// YCSB core tests: workload mixes match the paper's proportions, key/value
// geometry is exact (24B keys, 1000B values, batch 10), the zipfian chooser
// is skewed and in-range, stats accounting is correct, and a YCSB run
// drives HatKV end-to-end.
#include <gtest/gtest.h>

#include <map>

#include "kv/hatkv.h"
#include "ycsb/ycsb.h"

namespace hatrpc::ycsb {
namespace {

using namespace std::chrono_literals;

TEST(Workload, SpecsMatchPaperMixes) {
  WorkloadSpec a = WorkloadSpec::workload_a();
  EXPECT_DOUBLE_EQ(a.get + a.put + a.multi_get + a.multi_put, 1.0);
  EXPECT_DOUBLE_EQ(a.get, 0.25);
  WorkloadSpec b = WorkloadSpec::workload_b();
  EXPECT_DOUBLE_EQ(b.get, 0.475);
  EXPECT_DOUBLE_EQ(b.put, 0.025);
  EXPECT_DOUBLE_EQ(b.get + b.put + b.multi_get + b.multi_put, 1.0);
}

TEST(Workload, KeyAndValueGeometry) {
  WorkloadGenerator gen(WorkloadSpec::workload_a(), 1);
  EXPECT_EQ(gen.key_of(0).size(), 24u);
  EXPECT_EQ(gen.key_of(999999).size(), 24u);
  EXPECT_NE(gen.key_of(1), gen.key_of(2));
  sim::Rng rng(5);
  EXPECT_EQ(gen.make_value(rng).size(), 1000u);  // 10 fields x 100 B
}

TEST(Workload, OperationMixConvergesToSpec) {
  WorkloadGenerator gen(WorkloadSpec::workload_b(), 7);
  std::map<OpType, int> counts;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) ++counts[gen.next().type];
  EXPECT_NEAR(counts[OpType::kGet] / double(kN), 0.475, 0.02);
  EXPECT_NEAR(counts[OpType::kPut] / double(kN), 0.025, 0.01);
  EXPECT_NEAR(counts[OpType::kMultiGet] / double(kN), 0.475, 0.02);
  EXPECT_NEAR(counts[OpType::kMultiPut] / double(kN), 0.025, 0.01);
}

TEST(Workload, BatchOpsCarryTenKeys) {
  WorkloadGenerator gen(WorkloadSpec::workload_a(), 3);
  for (int i = 0; i < 200; ++i) {
    Op op = gen.next();
    switch (op.type) {
      case OpType::kGet:
        EXPECT_EQ(op.keys.size(), 1u);
        EXPECT_TRUE(op.values.empty());
        break;
      case OpType::kPut:
        EXPECT_EQ(op.keys.size(), 1u);
        ASSERT_EQ(op.values.size(), 1u);
        EXPECT_EQ(op.values[0].size(), 1000u);
        break;
      case OpType::kMultiGet:
        EXPECT_EQ(op.keys.size(), 10u);
        break;
      case OpType::kMultiPut:
        EXPECT_EQ(op.keys.size(), 10u);
        EXPECT_EQ(op.values.size(), 10u);
        break;
    }
  }
}

TEST(Zipfian, StaysInRange) {
  ZipfianChooser z(1000, 0.99);
  sim::Rng rng(11);
  for (int i = 0; i < 50000; ++i) EXPECT_LT(z.next(rng), 1000u);
}

TEST(Zipfian, IsSkewedComparedToUniform) {
  constexpr uint64_t kN = 1000;
  ZipfianChooser z(kN, 0.99);
  sim::Rng rng(13);
  std::map<uint64_t, int> hist;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++hist[z.next(rng)];
  // Top-10 most popular keys should cover far more than 1% of draws.
  std::vector<int> counts;
  for (auto& [k, c] : hist) counts.push_back(c);
  std::sort(counts.rbegin(), counts.rend());
  int top10 = 0;
  for (int i = 0; i < 10 && i < static_cast<int>(counts.size()); ++i)
    top10 += counts[i];
  EXPECT_GT(top10 / double(kDraws), 0.3);
}

TEST(Zipfian, UniformDistributionIsFlat) {
  WorkloadSpec spec;
  spec.dist = Distribution::kUniform;
  spec.record_count = 100;
  WorkloadGenerator gen(spec, 17);
  std::map<std::string, int> hist;
  for (int i = 0; i < 50000; ++i) {
    Op op = gen.next();
    for (auto& k : op.keys) ++hist[k];
  }
  for (auto& [k, c] : hist) EXPECT_GT(c, 500);  // every key well-covered
}

TEST(Stats, AccountsPerOpType) {
  StatsCollector s;
  s.record(OpType::kGet, 10us);
  s.record(OpType::kGet, 30us);
  s.record(OpType::kMultiPut, 100us);
  EXPECT_EQ(s.count(OpType::kGet), 2u);
  EXPECT_EQ(s.mean_latency(OpType::kGet), 20us);
  EXPECT_EQ(s.max_latency(OpType::kGet), 30us);
  EXPECT_EQ(s.total_ops(), 3u);
  EXPECT_NEAR(s.total_throughput_kops(1ms), 3.0, 1e-6);  // 3 ops / ms
}

TEST(YcsbOnHatKV, EndToEndWorkloadRuns) {
  using sim::Task;
  sim::Simulator sim;
  verbs::Fabric fabric(sim);
  verbs::Node* sn = fabric.add_node();
  kv::HatKVServer server(*sn);
  verbs::Node* cn = fabric.add_node();
  core::HatConnection conn(*cn, server.server());
  WorkloadSpec spec = WorkloadSpec::workload_a();
  spec.record_count = 200;
  StatsCollector stats;
  int errors = 0;
  sim.spawn([](sim::Simulator& sim, core::HatConnection& conn,
               WorkloadSpec spec, StatsCollector& stats, int& errors,
               kv::HatKVServer& server) -> Task<void> {
    hatkv::HatKVClient client(conn);
    WorkloadGenerator gen(spec, 23);
    sim::Rng vrng(29);
    // Load phase.
    for (const auto& key : gen.load_keys())
      co_await client.Put(key, gen.make_value(vrng));
    // Run phase.
    for (int i = 0; i < 300; ++i) {
      Op op = gen.next();
      sim::Time t0 = sim.now();
      switch (op.type) {
        case OpType::kGet: {
          std::string v = co_await client.Get(op.keys[0]);
          if (v.size() != spec.value_len()) ++errors;
          break;
        }
        case OpType::kPut:
          co_await client.Put(op.keys[0], op.values[0]);
          break;
        case OpType::kMultiGet: {
          auto vs = co_await client.MultiGet(op.keys);
          if (vs.size() != op.keys.size()) ++errors;
          break;
        }
        case OpType::kMultiPut: {
          std::vector<hatkv::KVPair> pairs(op.keys.size());
          for (size_t k = 0; k < op.keys.size(); ++k) {
            pairs[k].key = op.keys[k];
            pairs[k].value = op.values[k];
          }
          co_await client.MultiPut(pairs);
          break;
        }
      }
      stats.record(op.type, sim.now() - t0);
    }
    server.stop();
  }(sim, conn, spec, stats, errors, server));
  sim.run();
  EXPECT_EQ(errors, 0);
  EXPECT_EQ(stats.total_ops(), 300u);
  // Batched ops move ~10x the bytes; their latency must reflect that.
  EXPECT_GT(stats.mean_latency(OpType::kMultiGet),
            stats.mean_latency(OpType::kGet));
}

}  // namespace
}  // namespace hatrpc::ycsb
