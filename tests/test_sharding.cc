// Per-core sharded TServerRdma: steering policy pinning, per-shard counter
// accounting, core binding, and bit-identity of the single-shard
// configuration against the legacy unsharded server.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "sim/sync.h"
#include "thrift/rdma.h"
#include "verbs/fabric.h"

namespace hatrpc {
namespace {

using namespace std::chrono_literals;
using sim::Task;

proto::Handler echo_handler(verbs::Node& server, int core = -1) {
  return [&server, core](proto::View req) -> Task<proto::Buffer> {
    co_await server.cpu().compute(1000ns, core);
    co_return proto::Buffer(req.begin(), req.end());
  };
}

struct Bed {
  sim::Simulator sim;
  verbs::Fabric fabric{sim};
  verbs::Node* server;
  std::vector<verbs::Node*> clients;

  explicit Bed(uint32_t n_clients) {
    server = fabric.add_node();
    for (uint32_t i = 0; i < n_clients; ++i)
      clients.push_back(fabric.add_node());
  }
};

std::vector<size_t> shard_loads(const thrift::TServerRdma& srv) {
  std::vector<size_t> loads;
  for (uint32_t i = 0; i < srv.shard_count(); ++i)
    loads.push_back(srv.shard(i).endpoints.size());
  return loads;
}

TEST(Steering, RoundRobinCyclesShards) {
  Bed bed(8);
  thrift::TServerRdma::Options so;
  so.shards = 4;
  so.steering = thrift::Steering::kRoundRobin;
  thrift::TServerRdma srv(*bed.server, echo_handler(*bed.server), so);
  for (uint32_t c = 0; c < 8; ++c) {
    srv.accept(*bed.clients[c], proto::ProtocolKind::kEagerSendRecv,
               proto::ChannelConfig{});
    // Connection c lands on shard c % 4, in accept order.
    EXPECT_EQ(srv.shard(c % 4).endpoints.size(), c / 4 + 1) << "accept " << c;
  }
  EXPECT_EQ(shard_loads(srv), (std::vector<size_t>{2, 2, 2, 2}));
  for (uint32_t i = 0; i < 4; ++i)
    EXPECT_EQ(srv.shard(i).ctrs->get(obs::Ctr::kShardAccepts), 2u);
  srv.stop();
  bed.sim.run();
}

TEST(Steering, LeastLoadedFillsLowestFirst) {
  Bed bed(5);
  thrift::TServerRdma::Options so;
  so.shards = 3;
  so.steering = thrift::Steering::kLeastLoaded;
  thrift::TServerRdma srv(*bed.server, echo_handler(*bed.server), so);
  for (uint32_t c = 0; c < 5; ++c)
    srv.accept(*bed.clients[c], proto::ProtocolKind::kEagerSendRecv,
               proto::ChannelConfig{});
  // Ties go to the lowest shard id, so 5 accepts land 2/2/1.
  EXPECT_EQ(shard_loads(srv), (std::vector<size_t>{2, 2, 1}));
  srv.stop();
  bed.sim.run();
}

TEST(Steering, AffinityIsStablePerClient) {
  Bed bed(6);
  thrift::TServerRdma::Options so;
  so.shards = 4;
  so.steering = thrift::Steering::kAffinity;
  thrift::TServerRdma srv(*bed.server, echo_handler(*bed.server), so);
  // First pass: record each client's shard (via which load grew).
  std::vector<size_t> before = shard_loads(srv);
  std::vector<uint32_t> assigned;
  for (uint32_t c = 0; c < 6; ++c) {
    srv.accept(*bed.clients[c], proto::ProtocolKind::kEagerSendRecv,
               proto::ChannelConfig{});
    std::vector<size_t> after = shard_loads(srv);
    for (uint32_t s = 0; s < 4; ++s)
      if (after[s] != before[s]) assigned.push_back(s);
    before = std::move(after);
  }
  ASSERT_EQ(assigned.size(), 6u);
  // Second pass, reversed order: every client lands on the same shard again.
  for (uint32_t c = 6; c-- > 0;) {
    std::vector<size_t> pre = shard_loads(srv);
    srv.accept(*bed.clients[c], proto::ProtocolKind::kEagerSendRecv,
               proto::ChannelConfig{});
    std::vector<size_t> post = shard_loads(srv);
    for (uint32_t s = 0; s < 4; ++s) {
      if (post[s] != pre[s]) { EXPECT_EQ(s, assigned[c]) << "client " << c; }
    }
  }
  srv.stop();
  bed.sim.run();
}

Task<void> call_n(sim::Simulator&, proto::RpcChannel& ch, uint32_t n,
                  sim::WaitGroup& wg) {
  proto::Buffer payload(64, std::byte{0x11});
  for (uint32_t i = 0; i < n; ++i) (co_await ch.call(payload, 64)).value();
  wg.done();
}

TEST(ShardCounters, PollsSumToServerNodeTotal) {
  Bed bed(4);
  thrift::TServerRdma::Options so;
  so.shards = 2;
  so.bind_cores = true;
  thrift::TServerRdma srv(*bed.server, echo_handler(*bed.server), so);
  std::vector<thrift::TRdmaEndPoint*> eps;
  for (uint32_t c = 0; c < 4; ++c)
    eps.push_back(srv.accept(*bed.clients[c],
                             proto::ProtocolKind::kEagerSendRecv,
                             proto::ChannelConfig{}));
  sim::WaitGroup wg(bed.sim);
  wg.add(4);
  for (uint32_t c = 0; c < 4; ++c)
    bed.sim.spawn(call_n(bed.sim, eps[c]->channel(), 8, wg));
  bed.sim.spawn([](sim::Simulator&, sim::WaitGroup& wg,
                   thrift::TServerRdma& srv) -> Task<void> {
    co_await wg.wait();
    srv.stop();
  }(bed.sim, wg, srv));
  bed.sim.run();

  auto& counters = bed.fabric.obs().counters;
  // Every server-side CQ belongs to a shard-attached channel, so the shard
  // scopes together mirror exactly the server node's CQE consumption.
  EXPECT_GT(counters.shard_total(obs::Ctr::kShardPolls), 0u);
  EXPECT_EQ(counters.shard_total(obs::Ctr::kShardPolls),
            counters.node(bed.server->id()).get(obs::Ctr::kCqesPolled));
  EXPECT_EQ(counters.shard_total(obs::Ctr::kShardAccepts), 4u);
  // Per-shard accepts match the steering outcome (round robin, 4 over 2).
  EXPECT_EQ(srv.shard(0).ctrs->get(obs::Ctr::kShardAccepts), 2u);
  EXPECT_EQ(srv.shard(1).ctrs->get(obs::Ctr::kShardAccepts), 2u);
}

TEST(ShardCounters, WindowStallsMirrorClientNodeTotals) {
  Bed bed(2);
  thrift::TServerRdma::Options so;
  so.shards = 2;
  thrift::TServerRdma srv(*bed.server, echo_handler(*bed.server), so);
  std::vector<thrift::TRdmaEndPoint*> eps;
  for (uint32_t c = 0; c < 2; ++c)
    eps.push_back(srv.accept(*bed.clients[c],
                             proto::ProtocolKind::kEagerSendRecv,
                             proto::ChannelConfig{}.with_window(2)));
  // Four concurrent lanes on a window-2 channel force stalls (window=1
  // would take the classic unwindowed single-call path and never stall).
  sim::WaitGroup wg(bed.sim);
  wg.add(8);
  for (uint32_t c = 0; c < 2; ++c)
    for (int lane = 0; lane < 4; ++lane)
      bed.sim.spawn(call_n(bed.sim, eps[c]->channel(), 6, wg));
  bed.sim.spawn([](sim::Simulator&, sim::WaitGroup& wg,
                   thrift::TServerRdma& srv) -> Task<void> {
    co_await wg.wait();
    srv.stop();
  }(bed.sim, wg, srv));
  bed.sim.run();

  auto& counters = bed.fabric.obs().counters;
  uint64_t client_total = 0;
  for (verbs::Node* n : bed.clients)
    client_total += counters.node(n->id()).get(obs::Ctr::kWindowStalls);
  EXPECT_GT(counters.shard_total(obs::Ctr::kWindowStalls), 0u);
  EXPECT_EQ(counters.shard_total(obs::Ctr::kWindowStalls), client_total);
}

TEST(Sharding, PerShardSrqAndPoolArePrivate) {
  Bed bed(4);
  thrift::TServerRdma::Options so;
  so.shards = 2;
  so.srq_depth = 32;
  so.pool_block = 4096;
  so.pool_blocks = 4;
  std::vector<int> seen_cores;
  std::vector<proto::BufferPool*> seen_pools;
  thrift::TServerRdma::ShardProcessorFactory factory =
      [&](uint32_t, int core, proto::BufferPool* pool) {
        seen_cores.push_back(core);
        seen_pools.push_back(pool);
        return echo_handler(*bed.server, core);
      };
  so.bind_cores = true;
  thrift::TServerRdma srv(*bed.server, factory, so);
  ASSERT_EQ(srv.shard_count(), 2u);
  ASSERT_EQ(seen_cores.size(), 2u);
  EXPECT_EQ(seen_cores[0], 0);
  EXPECT_EQ(seen_cores[1], 1);
  EXPECT_NE(seen_pools[0], nullptr);
  EXPECT_NE(seen_pools[0], seen_pools[1]);
  EXPECT_NE(srv.shard(0).srq, nullptr);
  EXPECT_NE(srv.shard(0).srq, srv.shard(1).srq);

  std::vector<thrift::TRdmaEndPoint*> eps;
  for (uint32_t c = 0; c < 4; ++c)
    eps.push_back(srv.accept(*bed.clients[c],
                             proto::ProtocolKind::kDirectWriteImm,
                             proto::ChannelConfig{}));
  sim::WaitGroup wg(bed.sim);
  wg.add(4);
  for (uint32_t c = 0; c < 4; ++c)
    bed.sim.spawn(call_n(bed.sim, eps[c]->channel(), 4, wg));
  bed.sim.spawn([](sim::Simulator&, sim::WaitGroup& wg,
                   thrift::TServerRdma& srv) -> Task<void> {
    co_await wg.wait();
    srv.stop();
  }(bed.sim, wg, srv));
  bed.sim.run();
  EXPECT_EQ(bed.fabric.obs().counters.shard_total(obs::Ctr::kShardAccepts),
            4u);
}

// Runs a fixed workload against a server built by `make_srv`; returns the
// virtual end time and the full counter dump.
template <typename MakeSrv>
std::pair<sim::Time, std::string> run_workload(MakeSrv make_srv) {
  Bed bed(3);
  auto srv = make_srv(bed);
  std::vector<thrift::TRdmaEndPoint*> eps;
  for (uint32_t c = 0; c < 3; ++c)
    eps.push_back(srv->accept(*bed.clients[c],
                              proto::ProtocolKind::kEagerSendRecv,
                              proto::ChannelConfig{}.with_window(2)));
  sim::WaitGroup wg(bed.sim);
  wg.add(3);
  for (uint32_t c = 0; c < 3; ++c)
    bed.sim.spawn(call_n(bed.sim, eps[c]->channel(), 10, wg));
  sim::Time end{};
  bed.sim.spawn([](sim::Simulator& sim, sim::WaitGroup& wg, sim::Time& end,
                   thrift::TServerRdma& srv) -> Task<void> {
    co_await wg.wait();
    end = sim.now();
    srv.stop();
  }(bed.sim, wg, end, *srv));
  bed.sim.run();
  return {end, bed.fabric.obs().counters.dump()};
}

TEST(Sharding, SingleShardIsBitIdenticalToLegacyServer) {
  // The same workload against the legacy unsharded server and against a
  // single-shard server without core binding must produce the identical
  // virtual timeline and node/channel counters; the shard registry only
  // APPENDS its own lines to the dump.
  auto [legacy_end, legacy_dump] = run_workload([](Bed& bed) {
    return std::make_unique<thrift::TServerRdma>(
        *bed.server, echo_handler(*bed.server));
  });
  auto [sharded_end, sharded_dump] = run_workload([](Bed& bed) {
    thrift::TServerRdma::Options so;
    so.shards = 1;
    so.bind_cores = false;
    return std::make_unique<thrift::TServerRdma>(
        *bed.server, echo_handler(*bed.server), so);
  });
  EXPECT_EQ(legacy_end, sharded_end);
  ASSERT_GE(sharded_dump.size(), legacy_dump.size());
  EXPECT_EQ(sharded_dump.substr(0, legacy_dump.size()), legacy_dump);
}

}  // namespace
}  // namespace hatrpc
