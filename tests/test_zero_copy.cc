// Tests for the zero-copy send path: inline WQEs (IBV_SEND_INLINE
// semantics: snapshot at post time, max_inline_data boundary enforced),
// gather SGE lists, the MR registration cache (hit/miss/LRU-evict,
// dereg and rkey-revoke invalidation), pooled pre-registered serialization
// buffers, and the counter-oracle payoffs: Eager 64B drops from 4 payload
// copies to 1, Direct-WriteIMM small calls go fully inline, and the legacy
// staging path (zero_copy off, the default) stays byte-identical.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "proto/buffer_pool.h"
#include "proto/channel.h"
#include "sim/sync.h"
#include "thrift/rdma.h"
#include "verbs/endpoint.h"
#include "verbs/fault.h"
#include "verbs/verbs.h"

namespace hatrpc::proto {
namespace {

using sim::Simulator;
using sim::Task;
using namespace std::chrono_literals;

Handler echo_handler(verbs::Node& server) {
  return [&server](View req) -> Task<Buffer> {
    co_await server.cpu().compute(200ns);
    co_return Buffer(req.begin(), req.end());
  };
}

// ---------------------------------------------------------------------------
// MrCache: registration caching on the protection domain.
// ---------------------------------------------------------------------------

TEST(MrCache, HitMissAndSubrangeCoverage) {
  verbs::ProtectionDomain pd(0);
  obs::CounterSet ctrs;
  pd.set_counters(&ctrs);
  std::vector<std::byte> a(1024), b(512);

  verbs::MemoryRegion* mr = pd.mr_cache().get(a.data(), a.size());
  EXPECT_EQ(pd.mr_cache().misses(), 1u);
  EXPECT_EQ(pd.mr_cache().hits(), 0u);
  EXPECT_TRUE(mr->external());
  EXPECT_EQ(mr->data(), a.data());

  // Exact repeat and strict subrange both hit the covering entry.
  EXPECT_EQ(pd.mr_cache().get(a.data(), a.size()), mr);
  EXPECT_EQ(pd.mr_cache().get(a.data() + 128, 256), mr);
  EXPECT_EQ(pd.mr_cache().hits(), 2u);
  EXPECT_EQ(pd.mr_cache().misses(), 1u);

  // A different buffer misses.
  verbs::MemoryRegion* mrb = pd.mr_cache().get(b.data(), b.size());
  EXPECT_NE(mrb, mr);
  EXPECT_EQ(pd.mr_cache().misses(), 2u);

  EXPECT_EQ(ctrs.get(obs::Ctr::kMrCacheHits), 2u);
  EXPECT_EQ(ctrs.get(obs::Ctr::kMrCacheMisses), 2u);
  EXPECT_EQ(ctrs.get(obs::Ctr::kMrCacheEvictions), 0u);
}

TEST(MrCache, EvictsLeastRecentlyUsedPastCapacity) {
  verbs::ProtectionDomain pd(0);
  verbs::MrCache cache(pd, 2);
  std::vector<std::byte> a(64), b(64), c(64);

  cache.get(a.data(), a.size());
  cache.get(b.data(), b.size());
  cache.get(a.data(), a.size());  // a is now MRU; b is the LRU victim
  const size_t mrs_before = pd.mr_count();
  cache.get(c.data(), c.size());  // capacity 2: evicts b
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(pd.mr_count(), mrs_before);  // victim deregistered from the PD

  // a survived (hit); b was evicted (miss again).
  const uint64_t hits = cache.hits();
  cache.get(a.data(), a.size());
  EXPECT_EQ(cache.hits(), hits + 1);
  const uint64_t misses = cache.misses();
  cache.get(b.data(), b.size());
  EXPECT_EQ(cache.misses(), misses + 1);
}

TEST(MrCache, DeregInvalidatesTheCachedEntry) {
  verbs::ProtectionDomain pd(0);
  std::vector<std::byte> a(256);
  verbs::MemoryRegion* mr = pd.mr_cache().get(a.data(), a.size());
  const uint32_t old_rkey = mr->rkey();

  pd.dereg_mr(mr);
  EXPECT_EQ(pd.mr_cache().size(), 0u);

  // The next get is a fresh miss with a new registration, never a stale
  // pointer to the deregistered region.
  verbs::MemoryRegion* again = pd.mr_cache().get(a.data(), a.size());
  EXPECT_EQ(pd.mr_cache().misses(), 2u);
  EXPECT_NE(again->rkey(), old_rkey);
}

TEST(MrCache, RevokedEntryIsAMissNotStaleSuccess) {
  verbs::ProtectionDomain pd(0);
  std::vector<std::byte> a(256);
  verbs::MemoryRegion* mr = pd.mr_cache().get(a.data(), a.size());
  const uint32_t old_rkey = mr->rkey();
  mr->revoke();  // what the rkey-revoke fault does to every region

  const uint64_t hits = pd.mr_cache().hits();
  verbs::MemoryRegion* fresh = pd.mr_cache().get(a.data(), a.size());
  EXPECT_EQ(pd.mr_cache().hits(), hits);  // not served from the cache
  EXPECT_EQ(pd.mr_cache().misses(), 2u);
  EXPECT_NE(fresh->rkey(), old_rkey);
  EXPECT_FALSE(fresh->revoked());
}

TEST(MrCacheFaults, RevokeFaultNaksRemoteWritesAndRefreshesLocally) {
  Simulator sim;
  verbs::Fabric fabric(sim);
  verbs::Node* a = fabric.add_node();
  verbs::Node* b = fabric.add_node();
  auto aep = verbs::make_endpoint(*a, sim::PollMode::kBusy);
  auto bep = verbs::make_endpoint(*b, sim::PollMode::kBusy);
  verbs::connect(aep, bep);

  std::vector<std::byte> target(1024);
  verbs::MemoryRegion* dst = b->pd().mr_cache().get(target.data(),
                                                    target.size());
  const uint32_t old_rkey = dst->rkey();

  auto plan = std::make_unique<verbs::FaultPlan>(3);
  plan->revoke_remote_access_at(b->id(), sim::Time(50us));
  fabric.set_fault_plan(std::move(plan));

  struct Out {
    verbs::WcStatus before{}, after{};
    uint64_t misses = 0;
    uint32_t new_rkey = 0;
  } out;
  sim.spawn([](Simulator& sim, verbs::Node* a, verbs::Node* b,
               verbs::Endpoint& aep, verbs::MemoryRegion* dst,
               std::vector<std::byte>* target, Out& out) -> Task<void> {
    verbs::MemoryRegion* src = a->pd().alloc_mr(64);
    // Before the fault fires the rkey works.
    co_await aep.qp->post_send(verbs::SendWr{
        .opcode = verbs::Opcode::kWrite,
        .local = {src->data(), 64},
        .remote = dst->remote(0),
        .signaled = true});
    out.before = (co_await aep.send_wc()).status;
    co_await sim.sleep(100us);
    // After the revoke the cached-but-revoked rkey must surface a remote
    // access error, not stale success.
    co_await aep.qp->post_send(verbs::SendWr{
        .opcode = verbs::Opcode::kWrite,
        .local = {src->data(), 64},
        .remote = dst->remote(0),
        .signaled = true});
    out.after = (co_await aep.send_wc()).status;
    // And the owner's next cache lookup is a fresh miss with a new rkey.
    const uint64_t misses0 = b->pd().mr_cache().misses();
    verbs::MemoryRegion* fresh =
        b->pd().mr_cache().get(target->data(), target->size());
    out.misses = b->pd().mr_cache().misses() - misses0;
    out.new_rkey = fresh->rkey();
  }(sim, a, b, aep, dst, &target, out));
  sim.run();

  EXPECT_EQ(out.before, verbs::WcStatus::kSuccess);
  EXPECT_EQ(out.after, verbs::WcStatus::kRemAccessErr);
  EXPECT_EQ(out.misses, 1u);
  EXPECT_NE(out.new_rkey, old_rkey);
}

// ---------------------------------------------------------------------------
// Inline WQEs: the max_inline_data boundary and snapshot semantics.
// ---------------------------------------------------------------------------

TEST(InlineWqe, BoundaryExactlyAtMaxInlineData) {
  Simulator sim;
  verbs::Fabric fabric(sim);
  verbs::Node* a = fabric.add_node();
  verbs::Node* b = fabric.add_node();
  auto aep = verbs::make_endpoint(*a, sim::PollMode::kBusy);
  auto bep = verbs::make_endpoint(*b, sim::PollMode::kBusy);
  verbs::connect(aep, bep);
  const uint32_t maxi = aep.qp->max_inline_data();
  ASSERT_GT(maxi, 0u);

  verbs::MemoryRegion* src = a->pd().alloc_mr(maxi + 1);
  verbs::MemoryRegion* dst = b->pd().alloc_mr(maxi + 1);
  bep.qp->post_recv(verbs::RecvWr{.wr_id = 0,
                                  .buf = {dst->data(), maxi + 1}});

  struct Out {
    bool sent_ok = false;
    uint32_t recv_len = 0;
    bool over_rejected = false;
    bool read_rejected = false;
    uint64_t inline_wqes = 0;
  } out;
  sim.spawn([](verbs::Fabric& fabric, verbs::Node* a, verbs::Endpoint& aep,
               verbs::Endpoint& bep, verbs::MemoryRegion* src, uint32_t maxi,
               Out& out) -> Task<void> {
    // Exactly max_inline_data: accepted and delivered.
    co_await aep.qp->post_send(verbs::SendWr{
        .opcode = verbs::Opcode::kSend,
        .local = {src->data(), maxi},
        .signaled = true,
        .inline_data = true});
    out.sent_ok = (co_await aep.send_wc()).ok();
    out.recv_len = (co_await bep.recv_wc()).byte_len;
    out.inline_wqes =
        fabric.obs().counters.node(a->id()).get(obs::Ctr::kInlineWqes);
    // Deliberate violations below: keep VERBSCHECK=abort from throwing its
    // own diagnostic before the verbs-layer rejection we're testing for.
    verbs::VerbsCheck::Tolerate tol(fabric.check());
    // One byte over: post_send rejects outright (ibv_post_send EINVAL).
    try {
      co_await aep.qp->post_send(verbs::SendWr{
          .opcode = verbs::Opcode::kSend,
          .local = {src->data(), maxi + 1},
          .signaled = true,
          .inline_data = true});
    } catch (const std::length_error&) {
      out.over_rejected = true;
    }
    // Inline is a send/write-side flag; READs cannot be inline.
    try {
      co_await aep.qp->post_send(verbs::SendWr{
          .opcode = verbs::Opcode::kRead,
          .local = {src->data(), 8},
          .remote = {0, 0},
          .inline_data = true});
    } catch (const std::logic_error&) {
      out.read_rejected = true;
    }
  }(fabric, a, aep, bep, src, maxi, out));
  sim.run();

  EXPECT_TRUE(out.sent_ok);
  EXPECT_EQ(out.recv_len, maxi);
  EXPECT_EQ(out.inline_wqes, 1u);
  EXPECT_TRUE(out.over_rejected);
  EXPECT_TRUE(out.read_rejected);
}

TEST(InlineWqe, PayloadIsSnapshottedAtPostTime) {
  // IBV_SEND_INLINE's defining property: the buffer is reusable the moment
  // post_send returns, because the payload was copied into the WQE.
  Simulator sim;
  verbs::Fabric fabric(sim);
  verbs::Node* a = fabric.add_node();
  verbs::Node* b = fabric.add_node();
  auto aep = verbs::make_endpoint(*a, sim::PollMode::kBusy);
  auto bep = verbs::make_endpoint(*b, sim::PollMode::kBusy);
  verbs::connect(aep, bep);
  verbs::MemoryRegion* src = a->pd().alloc_mr(64);
  verbs::MemoryRegion* dst = b->pd().alloc_mr(64);
  bep.qp->post_recv(verbs::RecvWr{.wr_id = 0, .buf = {dst->data(), 64}});

  bool match = false;
  sim.spawn([](verbs::Endpoint& aep, verbs::Endpoint& bep,
               verbs::MemoryRegion* src, verbs::MemoryRegion* dst,
               bool& match) -> Task<void> {
    std::memset(src->data(), 0xAA, 64);
    co_await aep.qp->post_send(verbs::SendWr{
        .opcode = verbs::Opcode::kSend,
        .local = {src->data(), 64},
        .signaled = true,
        .inline_data = true});
    // Clobber the source immediately — before the NIC executes the WQE.
    std::memset(src->data(), 0xBB, 64);
    co_await aep.send_wc();
    co_await bep.recv_wc();
    match = dst->data()[0] == std::byte{0xAA} &&
            dst->data()[63] == std::byte{0xAA};
  }(aep, bep, src, dst, match));
  sim.run();
  EXPECT_TRUE(match);
}

// ---------------------------------------------------------------------------
// Channel-level counter oracles.
// ---------------------------------------------------------------------------

struct Footprint {
  obs::CounterSet ctrs;
  int calls = 0;
  uint64_t per_call(obs::Ctr c) const {
    EXPECT_EQ(ctrs.get(c) % uint64_t(calls), 0u) << obs::to_string(c);
    return ctrs.get(c) / uint64_t(calls);
  }
};

Footprint measure(ProtocolKind kind, size_t bytes, ChannelConfig cfg,
                  int calls = 4) {
  Simulator sim;
  verbs::Fabric fabric(sim);
  verbs::Node* cl = fabric.add_node();
  verbs::Node* sv = fabric.add_node();
  auto ch = make_channel(kind, *cl, *sv, echo_handler(*sv), cfg);
  Footprint f;
  f.calls = calls;
  sim.spawn([](verbs::Fabric& fabric, RpcChannel& ch, size_t bytes,
               int calls, Footprint& f) -> Task<void> {
    obs::Counters& ctrs = fabric.obs().counters;
    auto channel_sum = [&ctrs] {
      obs::CounterSet sum;
      for (uint32_t c = 0; c < ctrs.channel_count(); ++c)
        for (size_t i = 0; i < sum.v.size(); ++i)
          sum.v[i] += ctrs.channel(c).v[i];
      return sum;
    };
    Buffer payload(bytes, std::byte{0x7e});
    (co_await ch.call(payload, uint32_t(bytes))).value();  // warm-up
    obs::CounterSet base = channel_sum();
    for (int i = 0; i < calls; ++i) {
      Buffer echoed = (co_await ch.call(payload, uint32_t(bytes))).value();
      EXPECT_EQ(echoed, payload);
    }
    f.ctrs = channel_sum().delta_since(base);
    ch.shutdown();
  }(fabric, *ch, bytes, calls, f));
  sim.run();
  return f;
}

TEST(ZeroCopyOracle, Eager64BDropsFromFourCopiesToOne) {
  constexpr size_t kLen = 64;
  Footprint staged =
      measure(ProtocolKind::kEagerSendRecv, kLen, ChannelConfig{});
  Footprint zc = measure(ProtocolKind::kEagerSendRecv, kLen,
                         ChannelConfig{}.with_zero_copy());
  // Legacy stays at eager's intrinsic 4x; zero-copy pays exactly one copy
  // (materializing the response at the client), everything else gathered
  // inline.
  EXPECT_EQ(staged.per_call(obs::Ctr::kCopyBytes), 4 * kLen);
  EXPECT_EQ(staged.per_call(obs::Ctr::kInlineWqes), 0u);
  EXPECT_EQ(zc.per_call(obs::Ctr::kCopyBytes), kLen);
  EXPECT_EQ(zc.per_call(obs::Ctr::kInlineWqes), 2u);  // req + resp inline
  EXPECT_EQ(zc.per_call(obs::Ctr::kDoorbells), 2u);   // still one per side
}

TEST(ZeroCopyOracle, EagerLargeMessageGathersInsteadOfInlining) {
  constexpr size_t kLen = 300;  // wire frame > max_inline_data (220)
  Footprint zc = measure(ProtocolKind::kEagerSendRecv, kLen,
                         ChannelConfig{}.with_zero_copy());
  EXPECT_EQ(zc.per_call(obs::Ctr::kInlineWqes), 0u);
  // Each direction posts one 2-element [header | payload] gather list.
  EXPECT_EQ(zc.per_call(obs::Ctr::kGatherSges), 4u);
  EXPECT_EQ(zc.per_call(obs::Ctr::kCopyBytes), kLen);  // still one copy
}

TEST(ZeroCopyOracle, SegmentedEagerSendSkipsTheStagingCopy) {
  // Message > eager_slot: the eager pipe fragments it across slots. The
  // staged path copies each slice into its ring slot; the zero-copy path
  // posts [header | payload-slice] gather lists straight from the caller's
  // registered buffer, so the only copies left are the two receive-side
  // reassemblies (request at the server, response at the client).
  constexpr size_t kLen = 10000;  // 3 wire segments at the 4KB default slot
  Footprint staged =
      measure(ProtocolKind::kEagerSendRecv, kLen, ChannelConfig{});
  Footprint zc = measure(ProtocolKind::kEagerSendRecv, kLen,
                         ChannelConfig{}.with_zero_copy());
  EXPECT_EQ(staged.per_call(obs::Ctr::kCopyBytes), 4 * kLen);
  EXPECT_EQ(zc.per_call(obs::Ctr::kCopyBytes), 2 * kLen);
  EXPECT_GT(zc.per_call(obs::Ctr::kGatherSges), 0u);
  // Framing is unchanged: both paths post the same number of WQEs.
  EXPECT_EQ(zc.per_call(obs::Ctr::kWqesPosted),
            staged.per_call(obs::Ctr::kWqesPosted));
}

TEST(ZeroCopyOracle, SegmentedWindowedSendsHaveNoCrossTalk) {
  // window > 1 with oversized payloads: segmented zero-copy sends from two
  // lanes interleave on the ring, and the slot prefix must still route
  // every response to its own call.
  Simulator sim;
  verbs::Fabric fabric(sim);
  verbs::Node* cl = fabric.add_node();
  verbs::Node* sv = fabric.add_node();
  ChannelConfig cfg = ChannelConfig{}.with_window(2).with_zero_copy();
  auto ch = make_channel(ProtocolKind::kEagerSendRecv, *cl, *sv,
                         echo_handler(*sv), cfg);
  sim::WaitGroup wg(sim);
  int mismatches = 0;
  for (int t = 0; t < 2; ++t) {
    wg.add();
    sim.spawn([](RpcChannel& ch, int t, int& mismatches,
                 sim::WaitGroup& wg) -> Task<void> {
      for (int i = 0; i < 6; ++i) {
        Buffer req(9000 + 512 * t, std::byte(0x21 * (t + 1) + i));
        Buffer got = (co_await ch.call(req, uint32_t(req.size()))).value();
        if (got != req) ++mismatches;
      }
      wg.done();
    }(*ch, t, mismatches, wg));
  }
  sim.spawn([](sim::WaitGroup& wg, RpcChannel& ch) -> Task<void> {
    co_await wg.wait();
    ch.shutdown();
  }(wg, *ch));
  sim.run();
  EXPECT_EQ(mismatches, 0);
}

TEST(ZeroCopyOracle, DirectWriteImmSmallCallGoesFullyInline) {
  constexpr size_t kLen = 64;
  Footprint zc = measure(ProtocolKind::kDirectWriteImm, kLen,
                         ChannelConfig{}.with_zero_copy());
  EXPECT_EQ(zc.per_call(obs::Ctr::kInlineWqes), 2u);  // req + resp WRITE_IMM
  EXPECT_EQ(zc.per_call(obs::Ctr::kCopyBytes), 0u);
  EXPECT_EQ(zc.per_call(obs::Ctr::kDoorbells), 2u);
}

TEST(ZeroCopyOracle, PipelinedInlineSendsHaveNoSlotCrossTalk) {
  // window > 1: several inline WQEs in flight at once, each snapshotted at
  // post time — responses must match their own request, not a neighbour's.
  Simulator sim;
  verbs::Fabric fabric(sim);
  verbs::Node* cl = fabric.add_node();
  verbs::Node* sv = fabric.add_node();
  ChannelConfig cfg = ChannelConfig{}.with_window(4).with_zero_copy();
  auto ch = make_channel(ProtocolKind::kDirectWriteImm, *cl, *sv,
                         echo_handler(*sv), cfg);
  sim::WaitGroup wg(sim);
  int mismatches = 0;
  for (int t = 0; t < 4; ++t) {
    wg.add();
    sim.spawn([](RpcChannel& ch, int t, int& mismatches,
                 sim::WaitGroup& wg) -> Task<void> {
      for (int i = 0; i < 8; ++i) {
        Buffer req(64, std::byte(0x10 * (t + 1) + i));
        Buffer got = (co_await ch.call(req, 64)).value();
        if (got != req) ++mismatches;
      }
      wg.done();
    }(*ch, t, mismatches, wg));
  }
  sim.spawn([](sim::WaitGroup& wg, RpcChannel& ch) -> Task<void> {
    co_await wg.wait();
    ch.shutdown();
  }(wg, *ch));
  sim.run();
  EXPECT_EQ(mismatches, 0);
  EXPECT_GT(fabric.obs().counters.node(cl->id()).get(obs::Ctr::kInlineWqes),
            0u);
}

TEST(ZeroCopyOracle, RendezvousZeroCopyEchoesCorrectly) {
  // Write-RNDV inlines small responses and writes requests straight from
  // the caller's buffer; Read-RNDV advertises the caller's buffer for the
  // server's READ (registered through the MrCache).
  for (auto kind : {ProtocolKind::kWriteRndv, ProtocolKind::kReadRndv}) {
    Footprint zc = measure(kind, 8192, ChannelConfig{}.with_zero_copy());
    EXPECT_EQ(zc.ctrs.get(obs::Ctr::kFailedCalls), 0u);
    Footprint small = measure(kind, 64, ChannelConfig{}.with_zero_copy());
    EXPECT_EQ(small.ctrs.get(obs::Ctr::kFailedCalls), 0u);
  }
  // The large Read-RNDV request is READ out of a cache-registered user
  // buffer: warm calls hit, never re-register.
  Simulator sim;
  verbs::Fabric fabric(sim);
  verbs::Node* cl = fabric.add_node();
  verbs::Node* sv = fabric.add_node();
  auto ch = make_channel(ProtocolKind::kReadRndv, *cl, *sv, echo_handler(*sv),
                         ChannelConfig{}.with_zero_copy());
  sim.spawn([](verbs::Node* cl, RpcChannel& ch) -> Task<void> {
    Buffer payload(8192, std::byte{0x5c});
    (co_await ch.call(payload, 8192)).value();
    const uint64_t hits0 = cl->pd().mr_cache().hits();
    (co_await ch.call(payload, 8192)).value();  // same buffer: cache hit
    EXPECT_GT(cl->pd().mr_cache().hits(), hits0);
    ch.shutdown();
  }(cl, *ch));
  sim.run();
}

// ---------------------------------------------------------------------------
// BufferPool: pooled pre-registered serialization buffers.
// ---------------------------------------------------------------------------

TEST(BufferPool, ReusesBlocksAndFallsBackWhenExhausted) {
  Simulator sim;
  verbs::Fabric fabric(sim);
  verbs::Node* n = fabric.add_node();
  BufferPool pool(*n, 4096, 2);
  EXPECT_EQ(n->pd().mr_cache().misses(), 1u);  // the slab registration

  auto l1 = pool.acquire();
  auto l2 = pool.acquire();
  ASSERT_TRUE(l1 && l2);
  EXPECT_TRUE(l1.pooled() && l2.pooled());
  EXPECT_EQ(pool.in_use(), 2u);
  EXPECT_EQ(pool.reuses(), 0u);  // first use of each block is not a reuse

  auto l3 = pool.acquire();  // past capacity: plain heap block
  ASSERT_TRUE(l3);
  EXPECT_FALSE(l3.pooled());
  EXPECT_EQ(pool.exhausted(), 1u);

  std::byte* warm = l1.data();
  l1.release();
  auto l4 = pool.acquire();  // warm block back out of the free list
  EXPECT_EQ(l4.data(), warm);
  EXPECT_EQ(pool.reuses(), 1u);
  EXPECT_EQ(fabric.obs().counters.node(n->id()).get(
                obs::Ctr::kPoolBufferReuses),
            1u);

  // Sends from a lease are cache hits: the slab registration covers it.
  const uint64_t hits0 = n->pd().mr_cache().hits();
  n->pd().mr_cache().get(l4.data(), 4096);
  EXPECT_EQ(n->pd().mr_cache().hits(), hits0 + 1);
}

TEST(BufferPool, ThriftEndToEndReusesPooledBuffers) {
  Simulator sim;
  verbs::Fabric fabric(sim);
  verbs::Node* cl = fabric.add_node();
  verbs::Node* sv = fabric.add_node();
  thrift::TServerRdma server(*sv, echo_handler(*sv));
  thrift::TRdmaEndPoint* ep =
      server.accept(*cl, ProtocolKind::kEagerSendRecv,
                    ChannelConfig{}.with_zero_copy());
  ASSERT_NE(ep->pool(), nullptr);

  std::string got;
  sim.spawn([](thrift::TRdmaEndPoint* ep, std::string& got,
               thrift::TServerRdma& srv) -> Task<void> {
    thrift::TRdma t(*ep);
    for (int i = 0; i < 3; ++i) {
      std::string msg = "zero-copy-" + std::to_string(i);
      t.write(to_buffer(msg));
      co_await t.flush();
      std::byte buf[64];
      size_t n = co_await t.read(buf, sizeof buf);
      got = std::string(reinterpret_cast<const char*>(buf), n);
    }
    srv.stop();
  }(ep, got, server));
  sim.run();
  EXPECT_EQ(got, "zero-copy-2");
  // Calls 2 and 3 re-acquired the block call 1 used.
  EXPECT_GE(ep->pool()->reuses(), 2u);
  EXPECT_EQ(ep->pool()->exhausted(), 0u);
}

TEST(BufferPool, BackedTMemoryBufferSpillsToHeapOnOverflow) {
  std::vector<std::byte> block(16);
  auto m = thrift::TMemoryBuffer::backed({block.data(), block.size()});
  m.write("0123456789", 10);
  EXPECT_TRUE(m.backed_in_place());
  EXPECT_EQ(m.view().data(), block.data());
  m.write("abcdefghij", 10);  // 20 > 16: spills
  EXPECT_FALSE(m.backed_in_place());
  EXPECT_EQ(m.readable(), 20u);
  EXPECT_EQ(m.read_string(20), "0123456789abcdefghij");
}

// ---------------------------------------------------------------------------
// Legacy-path protection: zero_copy off stays bit-identical.
// ---------------------------------------------------------------------------

std::string counter_dump(bool zero_copy) {
  Simulator sim;
  verbs::Fabric fabric(sim);
  verbs::Node* cl = fabric.add_node();
  verbs::Node* sv = fabric.add_node();
  auto ch = make_channel(ProtocolKind::kEagerSendRecv, *cl, *sv,
                         echo_handler(*sv),
                         ChannelConfig{}.with_zero_copy(zero_copy));
  sim.spawn([](RpcChannel& ch) -> Task<void> {
    for (int i = 0; i < 8; ++i) {
      Buffer payload(64 + size_t(i) * 32, std::byte{0x42});
      (co_await ch.call(payload)).value();
    }
    ch.shutdown();
  }(*ch));
  sim.run();
  return fabric.obs().counters.dump();
}

TEST(LegacyPath, DefaultConfigDumpMentionsNoZeroCopyCounters) {
  std::string dump = counter_dump(false);
  EXPECT_FALSE(dump.empty());
  // Zero-valued counters are suppressed, so a legacy run's dump is
  // byte-identical to pre-zero-copy builds.
  EXPECT_EQ(dump.find("inline_wqes"), std::string::npos);
  EXPECT_EQ(dump.find("gather_sges"), std::string::npos);
  EXPECT_EQ(dump.find("mr_cache"), std::string::npos);
  EXPECT_EQ(dump.find("pool_buffer"), std::string::npos);
}

TEST(LegacyPath, ZeroCopyRunsAreDeterministic) {
  std::string a = counter_dump(true);
  std::string b = counter_dump(true);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("inline_wqes"), std::string::npos);
}

}  // namespace
}  // namespace hatrpc::proto
