// IDL compiler tests: lexing (comments, literals, suffixed numerics),
// parsing the full Fig. 7 grammar (service/function hints in all three
// lateral groups), Thrift constructs (structs, enums, typedefs, throws,
// containers), hint checking/filtering, and code-generation output.
#include <gtest/gtest.h>

#include "idl/check.h"
#include "idl/codegen.h"
#include "idl/parser.h"

namespace hatrpc::idl {
namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(Lexer, BasicTokens) {
  auto toks = lex("service Echo { } // trailing");
  ASSERT_EQ(toks.size(), 5u);  // service Echo { } EOF
  EXPECT_TRUE(toks[0].is_ident("service"));
  EXPECT_TRUE(toks[1].is_ident("Echo"));
  EXPECT_TRUE(toks[2].is_symbol('{'));
  EXPECT_TRUE(toks[3].is_symbol('}'));
  EXPECT_EQ(toks[4].kind, Tok::kEof);
}

TEST(Lexer, CommentsAreSkipped) {
  auto toks = lex("a // line\n b # hash\n c /* block\nspanning */ d");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_TRUE(toks[0].is_ident("a"));
  EXPECT_TRUE(toks[3].is_ident("d"));
}

TEST(Lexer, StringLiterals) {
  auto toks = lex("\"hello\" 'single' \"esc\\\"aped\"");
  EXPECT_EQ(toks[0].text, "hello");
  EXPECT_EQ(toks[1].text, "single");
  EXPECT_EQ(toks[2].text, "esc\"aped");
}

TEST(Lexer, NumbersAndSuffixedNumerics) {
  auto toks = lex("42 -7 128k 10M");
  EXPECT_EQ(toks[0].kind, Tok::kInt);
  EXPECT_EQ(toks[0].text, "42");
  EXPECT_EQ(toks[1].text, "-7");
  EXPECT_EQ(toks[2].kind, Tok::kIdent);  // suffixed numeric (hint value)
  EXPECT_EQ(toks[2].text, "128k");
  EXPECT_EQ(toks[3].text, "10M");
}

TEST(Lexer, TracksLineNumbers) {
  auto toks = lex("a\nb\n\nc");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[2].line, 4);
}

TEST(Lexer, ErrorsOnUnterminatedString) {
  EXPECT_THROW(lex("\"never closed"), LexError);
  EXPECT_THROW(lex("/* never closed"), LexError);
  EXPECT_THROW(lex("@"), LexError);
}

// ---------------------------------------------------------------------------
// Parser — the Fig. 7 grammar.
// ---------------------------------------------------------------------------

constexpr const char* kKvIdl = R"(
// The paper's Fig. 10 IDL, condensed.
namespace cpp hatkv

struct KVPair {
  1: string key;
  2: string value;
}

exception KVError {
  1: i32 code;
  2: string message;
}

service HatKV {
  hint: concurrency=128, perf_goal=throughput;
  s_hint: polling=event;

  string Get(1: string key) throws (1: KVError err)
    [ hint: payload_size=1024; c_hint: perf_goal=latency; ]
  void Put(1: string key, 2: string value)
    [ hint: payload_size=1024; ]
  list<string> MultiGet(1: list<string> keys)
    [ hint: payload_size=10k; ]
  oneway void Heartbeat()
    [ hint: priority=low; ]
}
)";

TEST(Parser, ParsesKvService) {
  Program p = parse(kKvIdl);
  EXPECT_EQ(p.cpp_namespace, "hatkv");
  ASSERT_EQ(p.structs.size(), 2u);
  EXPECT_EQ(p.structs[0].name, "KVPair");
  EXPECT_FALSE(p.structs[0].is_exception);
  EXPECT_TRUE(p.structs[1].is_exception);
  ASSERT_EQ(p.services.size(), 1u);
  const ServiceDef& s = p.services[0];
  EXPECT_EQ(s.name, "HatKV");
  ASSERT_EQ(s.functions.size(), 4u);
  EXPECT_EQ(s.hints.size(), 3u);  // concurrency, perf_goal, polling
  EXPECT_EQ(s.hints[2].side, hint::Side::kServer);
}

TEST(Parser, FunctionHintsAndThrows) {
  Program p = parse(kKvIdl);
  const FunctionDef& get = p.services[0].functions[0];
  EXPECT_EQ(get.name, "Get");
  ASSERT_EQ(get.hints.size(), 2u);
  EXPECT_EQ(get.hints[0].key, "payload_size");
  EXPECT_EQ(get.hints[0].value, "1024");
  EXPECT_EQ(get.hints[1].side, hint::Side::kClient);
  ASSERT_EQ(get.throws.size(), 1u);
  EXPECT_EQ(get.throws[0].type.name, "KVError");
  const FunctionDef& hb = p.services[0].functions[3];
  EXPECT_TRUE(hb.oneway);
}

TEST(Parser, ContainersAndFieldIds) {
  Program p = parse(kKvIdl);
  const FunctionDef& mget = p.services[0].functions[2];
  EXPECT_EQ(mget.ret.kind, TypeRef::Kind::kList);
  EXPECT_EQ(mget.ret.args[0].kind, TypeRef::Kind::kString);
  EXPECT_EQ(mget.args[0].id, 1);
}

TEST(Parser, EnumsAndTypedefs) {
  Program p = parse(R"(
    enum Mode { FAST = 1, SLOW = 5, AUTO }
    typedef map<string, i64> Counters
    struct S { 1: Mode m; 2: Counters c; }
  )");
  ASSERT_EQ(p.enums.size(), 1u);
  EXPECT_EQ(p.enums[0].values[2],
            (std::pair<std::string, int32_t>{"AUTO", 6}));
  // typedef resolved structurally at parse time
  EXPECT_EQ(p.structs[0].fields[1].type.kind, TypeRef::Kind::kMap);
}

TEST(Parser, ServiceExtends) {
  Program p = parse("service Base {} service Derived extends Base {}");
  EXPECT_EQ(p.services[1].extends, "Base");
}

TEST(Parser, AutoFieldIds) {
  Program p = parse("struct S { i32 a; i32 b; 9: i32 c; i32 d; }");
  EXPECT_EQ(p.structs[0].fields[0].id, 1);
  EXPECT_EQ(p.structs[0].fields[1].id, 2);
  EXPECT_EQ(p.structs[0].fields[2].id, 9);
  EXPECT_EQ(p.structs[0].fields[3].id, 10);
}

TEST(Parser, HintListWithMultipleEntries) {
  Program p = parse(R"(
    service S {
      hint: perf_goal=latency, concurrency=16, numa_binding=true;
      void f();
    }
  )");
  EXPECT_EQ(p.services[0].hints.size(), 3u);
}

TEST(Parser, SyntaxErrorsAreReported) {
  EXPECT_THROW(parse("service {"), ParseError);
  EXPECT_THROW(parse("service S { hint perf_goal=latency; }"), ParseError);
  EXPECT_THROW(parse("service S { hint: =latency; }"), ParseError);
  EXPECT_THROW(parse("service S { hint: perf_goal latency; }"), ParseError);
  EXPECT_THROW(parse("struct S { 1: unknowntype"), ParseError);
}

// A function named 'hint' must still parse (contextual keywords).
TEST(Parser, HintIsContextualKeyword) {
  Program p = parse("service S { void hint(); }");
  EXPECT_EQ(p.services[0].functions[0].name, "hint");
}

// ---------------------------------------------------------------------------
// Checker — validation, filtering, merging.
// ---------------------------------------------------------------------------

TEST(Checker, BuildsHierarchicalHints) {
  Program p = parse(kKvIdl);
  CheckResult r = check(p);
  EXPECT_TRUE(r.diagnostics.empty());
  ASSERT_EQ(r.services.size(), 1u);
  const hint::ServiceHints& h = r.services[0].hints;
  const hint::Value* conc =
      h.lookup("Get", hint::Key::kConcurrency, hint::Perspective::kClient);
  ASSERT_NE(conc, nullptr);
  EXPECT_EQ(conc->num, 128);
  const hint::Value* goal =
      h.lookup("Get", hint::Key::kPerfGoal, hint::Perspective::kClient);
  ASSERT_NE(goal, nullptr);
  EXPECT_EQ(goal->goal, hint::PerfGoal::kLatency);  // c_hint override
  const hint::Value* mget =
      h.lookup("MultiGet", hint::Key::kPayloadSize,
               hint::Perspective::kClient);
  ASSERT_NE(mget, nullptr);
  EXPECT_EQ(mget->num, 10 * 1024);
}

TEST(Checker, FiltersUnknownKeysWithWarning) {
  Program p = parse("service S { hint: bogus=1, perf_goal=latency; void f(); }");
  CheckResult r = check(p);
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].severity, Diagnostic::Severity::kWarning);
  EXPECT_FALSE(r.has_errors());
  // The valid hint survived the filter.
  EXPECT_NE(r.services[0].hints.lookup("f", hint::Key::kPerfGoal,
                                       hint::Perspective::kClient),
            nullptr);
}

TEST(Checker, FiltersBadValues) {
  Program p = parse("service S { hint: perf_goal=warp_speed; void f(); }");
  CheckResult r = check(p);
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.services[0].hints.lookup("f", hint::Key::kPerfGoal,
                                       hint::Perspective::kClient),
            nullptr);
}

TEST(Checker, StrictModePromotesToError) {
  Program p = parse("service S { hint: bogus=1; void f(); }");
  CheckResult r = check(p, /*strict=*/true);
  EXPECT_TRUE(r.has_errors());
}

// ---------------------------------------------------------------------------
// Code generation (structural checks; behaviour is covered by the
// generated-code end-to-end test target).
// ---------------------------------------------------------------------------

std::string generate(const char* idl) {
  Program p = parse(idl);
  CheckResult r = check(p);
  return generate_cpp(p, r);
}

TEST(Codegen, EmitsStructsClientsHandlersAndHints) {
  std::string code = generate(kKvIdl);
  EXPECT_NE(code.find("struct KVPair"), std::string::npos);
  EXPECT_NE(code.find("struct KVError"), std::string::npos);
  EXPECT_NE(code.find("class HatKVClient"), std::string::npos);
  EXPECT_NE(code.find("class HatKVIf"), std::string::npos);
  EXPECT_NE(code.find("inline void register_HatKV"), std::string::npos);
  EXPECT_NE(code.find("HatKV_hints()"), std::string::npos);
  EXPECT_NE(code.find("namespace hatkv"), std::string::npos);
  // Hint map embeds the validated values.
  EXPECT_NE(code.find("\"128\""), std::string::npos);
  EXPECT_NE(code.find("kPayloadSize"), std::string::npos);
}

TEST(Codegen, ClientSignaturesUseTaskAndConstRefs) {
  std::string code = generate(kKvIdl);
  EXPECT_NE(code.find("hatrpc::sim::Task<std::string> Get(const "
                      "std::string& key)"),
            std::string::npos);
  EXPECT_NE(
      code.find("hatrpc::sim::Task<std::vector<std::string>> MultiGet"),
      std::string::npos);
}

TEST(Codegen, ThrowsClausesGenerateExceptionPaths) {
  std::string code = generate(kKvIdl);
  EXPECT_NE(code.find("catch (const KVError& _ex)"), std::string::npos);
  EXPECT_NE(code.find("throw err;"), std::string::npos);
}

TEST(Codegen, EnumsSerializeAsI32) {
  std::string code = generate(
      "enum E { A = 1 } struct S { 1: E e; } service Svc { E f(1: E x); }");
  EXPECT_NE(code.find("enum class E : int32_t"), std::string::npos);
  EXPECT_NE(code.find("writeI32(static_cast<int32_t>"), std::string::npos);
  EXPECT_NE(code.find("static_cast<E>(_p.readI32())"), std::string::npos);
}

TEST(Codegen, ConstantsAreEmitted) {
  std::string code = generate(
      "const i32 BATCH = 10\n"
      "const string VERSION = \"1.2\"\n"
      "const double RATIO = 0.5\n"
      "service S { void f(); }");
  EXPECT_NE(code.find("inline constexpr int32_t BATCH = 10;"),
            std::string::npos);
  EXPECT_NE(code.find("inline const std::string VERSION = \"1.2\";"),
            std::string::npos);
  EXPECT_NE(code.find("inline constexpr double RATIO = 0.5;"),
            std::string::npos);
}

TEST(Codegen, FilteredHintsDoNotAppear) {
  std::string code =
      generate("service S { hint: bogus=7, concurrency=4; void f(); }");
  EXPECT_EQ(code.find("bogus"), std::string::npos);
  EXPECT_NE(code.find("\"4\""), std::string::npos);
}

}  // namespace
}  // namespace hatrpc::idl
