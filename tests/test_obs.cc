// Tests for the observability layer (src/obs): exact per-call verbs-op
// footprints observed through the counter registry for the protocol kinds
// whose steady state is deterministic, byte-identical counter dumps for
// same-seed chaos runs, histogram percentile extraction, and the Chrome
// about:tracing JSON export.
//
// The exact counts pin the §3 cost-model arguments: Direct-WriteIMM is the
// 2-doorbell / zero-copy floor, chaining halves doorbells but not WQEs,
// eager pays 4x payload in staging copies, and the rendezvous/read-based
// designs pay fixed extra control ops.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "proto/channel.h"
#include "proto/reliable.h"
#include "verbs/fault.h"

namespace hatrpc::proto {
namespace {

using sim::Simulator;
using sim::Task;
using namespace std::chrono_literals;

Handler echo_handler(verbs::Node& server) {
  return [&server](View req) -> Task<Buffer> {
    co_await server.cpu().compute(200ns);
    co_return Buffer(req.begin(), req.end());
  };
}

/// Steady-state per-call footprint: one warm-up call, then `calls` measured
/// calls; returns the counter delta summed over every channel scope (hybrid
/// kinds register one scope per sub-channel) plus the ChannelStats delta.
struct Footprint {
  obs::CounterSet ctrs;   // channel-scope counter delta over `calls`
  ChannelStats stats;     // ChannelStats delta over `calls`
  int calls = 0;

  /// Exact per-call value; fails the test if the total isn't an exact
  /// multiple (i.e. the protocol is not in a per-call steady state).
  uint64_t per_call(obs::Ctr c) const {
    EXPECT_EQ(ctrs.get(c) % uint64_t(calls), 0u) << obs::to_string(c);
    return ctrs.get(c) / uint64_t(calls);
  }
};

Footprint measure(ProtocolKind kind, size_t bytes, int calls = 4) {
  Simulator sim;
  verbs::Fabric fabric(sim);
  verbs::Node* cl = fabric.add_node();
  verbs::Node* sv = fabric.add_node();
  ChannelConfig cfg;
  cfg.with_max_msg(1 << 20);
  auto ch = make_channel(kind, *cl, *sv, echo_handler(*sv), cfg);
  Footprint f;
  f.calls = calls;
  sim.spawn([](verbs::Fabric& fabric, RpcChannel& ch, size_t bytes,
               int calls, Footprint& f) -> Task<void> {
    obs::Counters& ctrs = fabric.obs().counters;
    auto channel_sum = [&ctrs] {
      obs::CounterSet sum;
      for (uint32_t c = 0; c < ctrs.channel_count(); ++c)
        for (size_t i = 0; i < sum.v.size(); ++i)
          sum.v[i] += ctrs.channel(c).v[i];
      return sum;
    };
    Buffer payload(bytes, std::byte{0x7e});
    (co_await ch.call(payload, uint32_t(bytes))).value();  // warm-up
    obs::CounterSet base = channel_sum();
    ChannelStats sbase = ch.stats();
    for (int i = 0; i < calls; ++i)
      (co_await ch.call(payload, uint32_t(bytes))).value();
    f.ctrs = channel_sum().delta_since(base);
    ChannelStats now = ch.stats();
    f.stats.sends = now.sends - sbase.sends;
    f.stats.writes = now.writes - sbase.writes;
    f.stats.write_imms = now.write_imms - sbase.write_imms;
    f.stats.reads = now.reads - sbase.reads;
    f.stats.read_retries = now.read_retries - sbase.read_retries;
    ch.shutdown();
  }(fabric, *ch, bytes, calls, f));
  sim.run();
  return f;
}

// ---------------------------------------------------------------------------
// Exact per-call op counts (doorbells / WQEs / copies / READs) per protocol.
// ---------------------------------------------------------------------------

TEST(OpCounts, DirectWriteImmIsTwoDoorbellsZeroCopy) {
  Footprint f = measure(ProtocolKind::kDirectWriteImm, 512);
  EXPECT_EQ(f.per_call(obs::Ctr::kDoorbells), 2u);  // one WRITE_IMM per side
  EXPECT_EQ(f.per_call(obs::Ctr::kWqesPosted), 2u);
  EXPECT_EQ(f.per_call(obs::Ctr::kCopyBytes), 0u);  // true zero-copy
}

TEST(OpCounts, DirectWriteSendPaysFourDoorbells) {
  Footprint f = measure(ProtocolKind::kDirectWriteSend, 512);
  EXPECT_EQ(f.per_call(obs::Ctr::kDoorbells), 4u);  // WRITE + SEND per side
  EXPECT_EQ(f.per_call(obs::Ctr::kWqesPosted), 4u);
}

TEST(OpCounts, ChainedWriteSendHalvesDoorbellsNotWqes) {
  Footprint f = measure(ProtocolKind::kChainedWriteSend, 512);
  EXPECT_EQ(f.per_call(obs::Ctr::kDoorbells), 2u);  // one chain per side
  EXPECT_EQ(f.per_call(obs::Ctr::kWqesPosted), 4u);
}

TEST(OpCounts, EagerPaysFourPayloadCopiesPerEcho) {
  constexpr size_t kLen = 512;
  Footprint f = measure(ProtocolKind::kEagerSendRecv, kLen);
  EXPECT_EQ(f.per_call(obs::Ctr::kDoorbells), 2u);  // one SEND per side
  // Copy in + copy out, in each direction: 4x the payload per echo.
  EXPECT_EQ(f.per_call(obs::Ctr::kCopyBytes), 4 * kLen);
}

TEST(OpCounts, WriteRendezvousCostsSixDoorbells) {
  Footprint f = measure(ProtocolKind::kWriteRndv, 8192);
  // RTS + CTS + WRITE_IMM, each direction, each its own doorbell.
  EXPECT_EQ(f.per_call(obs::Ctr::kDoorbells), 6u);
  EXPECT_EQ(f.stats.sends, uint64_t(f.calls) * 4);
  EXPECT_EQ(f.stats.write_imms, uint64_t(f.calls) * 2);
}

TEST(OpCounts, ReadRendezvousCostsFiveDoorbells) {
  Footprint f = measure(ProtocolKind::kReadRndv, 8192);
  // RTS each way + completion notify + one READ per side.
  EXPECT_EQ(f.per_call(obs::Ctr::kDoorbells), 5u);
  EXPECT_EQ(f.stats.reads, uint64_t(f.calls) * 2);
}

TEST(OpCounts, PilafIsThreeReadsOneWritePerCall) {
  Footprint f = measure(ProtocolKind::kPilaf, 512);
  // 2 metadata READs + 1 payload READ (retries excluded), 1 request WRITE.
  EXPECT_EQ(f.stats.reads - f.stats.read_retries, uint64_t(f.calls) * 3);
  EXPECT_EQ(f.stats.writes, uint64_t(f.calls));
}

TEST(OpCounts, FarmIsTwoReadsPerCall) {
  Footprint f = measure(ProtocolKind::kFarm, 512);
  EXPECT_EQ(f.stats.reads - f.stats.read_retries, uint64_t(f.calls) * 2);
}

TEST(OpCounts, HybridSmallTakesEagerPathLargeTakesRendezvous) {
  Footprint small = measure(ProtocolKind::kHybridEagerRndv, 512);
  EXPECT_EQ(small.per_call(obs::Ctr::kDoorbells), 2u);  // eager footprint
  EXPECT_EQ(small.stats.write_imms, 0u);
  Footprint large = measure(ProtocolKind::kHybridEagerRndv, 8192);
  EXPECT_EQ(large.per_call(obs::Ctr::kDoorbells), 6u);  // Write-RNDV
  EXPECT_EQ(large.stats.write_imms, uint64_t(large.calls) * 2);
}

TEST(OpCounts, DmaBytesScaleWithPayloadOnlyForZeroCopy) {
  Footprint a = measure(ProtocolKind::kDirectWriteImm, 512);
  Footprint b = measure(ProtocolKind::kDirectWriteImm, 4096);
  // Zero-copy: DMA grows with the payload, staging copies stay at zero.
  EXPECT_GT(b.per_call(obs::Ctr::kDmaBytes), a.per_call(obs::Ctr::kDmaBytes));
  EXPECT_GE(a.per_call(obs::Ctr::kDmaBytes), 2 * 512u);  // both directions
  EXPECT_EQ(b.per_call(obs::Ctr::kCopyBytes), 0u);
}

// ---------------------------------------------------------------------------
// Determinism: same seed => byte-identical counter dump, even under chaos.
// ---------------------------------------------------------------------------

std::string chaos_counter_dump(uint64_t seed) {
  Simulator sim;
  verbs::Fabric fabric{sim};
  verbs::Node* cl = fabric.add_node();
  verbs::Node* sv = fabric.add_node();
  RetryPolicy pol;
  pol.timeout = 500us;
  pol.jitter_seed = seed * 2654435761ULL + 1;
  auto ch = make_reliable_channel(ProtocolKind::kEagerSendRecv, *cl, *sv,
                                  echo_handler(*sv), ChannelConfig{}, pol);
  auto plan = std::make_unique<verbs::FaultPlan>(seed);
  plan->profile.drop = 0.05;
  plan->profile.corrupt = 0.03;
  plan->profile.duplicate = 0.05;
  plan->profile.delay = 0.10;
  plan->fail_qp_at(1, sim::Time(200us));
  fabric.set_fault_plan(std::move(plan));
  sim.spawn([](Simulator& sim, ReliableChannel& ch) -> Task<void> {
    for (int i = 0; i < 16; ++i) {
      Buffer payload(64 + size_t(i) * 8, std::byte{0x42});
      (void)co_await ch.call(payload);  // errors are part of the dump
      co_await sim.sleep(20us);
    }
    ch.abort();
  }(sim, *ch));
  sim.run();
  return fabric.obs().counters.dump();
}

TEST(Determinism, SameSeedSameCounterDumpUnderFaults) {
  std::string a = chaos_counter_dump(7);
  std::string b = chaos_counter_dump(7);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);  // byte-identical
  // The dump must show real reliability work, not just clean traffic.
  EXPECT_NE(a.find("retransmits="), std::string::npos);
}

TEST(Determinism, DumpIsStableTextFormat) {
  obs::Counters c;
  c.node(0).add(obs::Ctr::kDoorbells, 3);
  c.node(1);  // registered but all-zero: line with no counters
  uint32_t ch = c.register_channel();
  c.channel(ch).add(obs::Ctr::kCopyBytes, 128);
  EXPECT_EQ(c.dump(), "node/0: doorbells=3\nnode/1:\nchannel/0: copy_bytes=128\n");
}

// ---------------------------------------------------------------------------
// Histogram.
// ---------------------------------------------------------------------------

TEST(Histogram, SmallValuesAreExact) {
  obs::Histogram h;
  for (uint64_t v = 1; v <= 10; ++v) h.record_ns(v);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.min_ns(), 1u);
  EXPECT_EQ(h.max_ns(), 10u);
  EXPECT_EQ(h.percentile_ns(0.50), 5u);  // values < 16 land in exact buckets
  EXPECT_EQ(h.percentile_ns(0.999), 10u);
}

TEST(Histogram, LargeValuesBoundedRelativeError) {
  obs::Histogram h;
  constexpr uint64_t kV = 123456789;
  h.record_ns(kV);
  uint64_t p99 = h.percentile_ns(0.99);
  EXPECT_GE(p99, kV);                       // conservative upper edge...
  EXPECT_LE(p99, kV + kV / 16 + 1);         // ...within one sub-bucket
  EXPECT_EQ(h.percentile_ns(0.5), kV);      // clamped to observed max
}

TEST(Histogram, SummaryIsDeterministicText) {
  obs::Histogram h;
  h.record(sim::Duration(1000));
  h.record(sim::Duration(2000));
  EXPECT_EQ(h.summary(), h.summary());
  EXPECT_NE(h.summary().find("count=2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracer: Chrome trace-event JSON shape.
// ---------------------------------------------------------------------------

TEST(Tracer, ExportsWellFormedChromeTraceJson) {
  obs::Tracer t;
  t.enable();
  t.set_process_name(0, "server");
  t.complete("call/Direct-WriteIMM", "rpc", sim::Time(1500ns), 2750ns, 0, 3);
  t.instant("retry", "rpc", sim::Time(5000ns), 1, 3);
  std::ostringstream os;
  t.write_json(os);
  std::string j = os.str();
  EXPECT_EQ(j.front(), '{');
  EXPECT_NE(j.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"i\""), std::string::npos);
  // Virtual ns rendered as fixed-point microseconds (1500ns -> 1.500).
  EXPECT_NE(j.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(j.find("\"dur\":2.750"), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"call/Direct-WriteIMM\""), std::string::npos);
}

TEST(Tracer, AbsorbOffsetsPids) {
  obs::Tracer scenario;
  scenario.enable();
  scenario.complete("span", "rpc", sim::Time(0ns), 100ns, /*pid=*/2, 0);
  scenario.set_process_name(0, "server");
  obs::Tracer sink;
  sink.absorb(scenario, /*pid_base=*/10);
  std::ostringstream os;
  sink.write_json(os);
  EXPECT_NE(os.str().find("\"pid\":12"), std::string::npos);
  EXPECT_NE(os.str().find("\"pid\":10"), std::string::npos);
}

TEST(Tracer, ChannelsEmitSpansKeyedToVirtualTime) {
  Simulator sim;
  verbs::Fabric fabric(sim);
  fabric.obs().tracer.enable();
  verbs::Node* cl = fabric.add_node();
  verbs::Node* sv = fabric.add_node();
  auto ch = make_channel(ProtocolKind::kDirectWriteImm, *cl, *sv,
                         echo_handler(*sv), ChannelConfig{});
  sim.spawn([](RpcChannel& ch) -> Task<void> {
    Buffer payload(256, std::byte{0x1});
    for (int i = 0; i < 3; ++i)
      (co_await ch.call(payload, 256)).value();
    ch.shutdown();
  }(*ch));
  sim.run();
  std::ostringstream os;
  fabric.obs().tracer.write_json(os);
  std::string j = os.str();
  EXPECT_NE(j.find("call/Direct-WriteIMM"), std::string::npos);
  EXPECT_NE(j.find("\"cat\":\"rpc\""), std::string::npos);
  EXPECT_NE(j.find("\"cat\":\"verbs\""), std::string::npos);
  EXPECT_GT(fabric.obs().tracer.event_count(), 6u);  // >=1 span per call+op
}

TEST(Tracer, DisabledTracerRecordsNothingFromChannels) {
  Simulator sim;
  verbs::Fabric fabric(sim);
  verbs::Node* cl = fabric.add_node();
  verbs::Node* sv = fabric.add_node();
  auto ch = make_channel(ProtocolKind::kDirectWriteImm, *cl, *sv,
                         echo_handler(*sv), ChannelConfig{});
  sim.spawn([](RpcChannel& ch) -> Task<void> {
    Buffer payload(256, std::byte{0x1});
    (co_await ch.call(payload, 256)).value();
    ch.shutdown();
  }(*ch));
  sim.run();
  EXPECT_EQ(fabric.obs().tracer.event_count(), 0u);
}

// ---------------------------------------------------------------------------
// Result<Buffer, RpcError>: the unified call() surface.
// ---------------------------------------------------------------------------

TEST(CallResult, ValueThrowsTheStoredError) {
  CallResult r(RpcError(RpcErrc::kTimeout, "deadline"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error().errc(), RpcErrc::kTimeout);
  EXPECT_THROW((void)std::move(r).value(), RpcError);
}

TEST(CallResult, OkResultDereferences) {
  CallResult r(to_buffer("hi"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(as_string(*r), "hi");
  EXPECT_EQ(std::move(r).value().size(), 2u);
}

TEST(CallResult, FailedCallsAreCountedPerChannelAndNode) {
  Simulator sim;
  verbs::Fabric fabric(sim);
  verbs::Node* cl = fabric.add_node();
  verbs::Node* sv = fabric.add_node();
  auto ch = make_channel(ProtocolKind::kEagerSendRecv, *cl, *sv,
                         echo_handler(*sv), ChannelConfig{});
  sim.spawn([](RpcChannel& ch) -> Task<void> {
    Buffer payload(64, std::byte{0x9});
    (co_await ch.call(payload, 64)).value();
    ch.abort();  // subsequent call must fail with a typed error
    CallResult r = co_await ch.call(payload, 64);
    EXPECT_FALSE(r.ok());
  }(*ch));
  sim.run();
  EXPECT_EQ(fabric.obs().counters.channel(0).get(obs::Ctr::kFailedCalls), 1u);
  EXPECT_EQ(fabric.obs().counters.node(cl->id()).get(obs::Ctr::kFailedCalls),
            1u);
}

}  // namespace
}  // namespace hatrpc::proto
