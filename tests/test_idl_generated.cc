// End-to-end test of hatrpc-gen output: echo_kv.hatrpc is compiled to C++
// at build time, the generated client/handler pair runs over the full
// HatRPC engine (hints -> plans -> RDMA channels), and every generated
// construct is exercised: structs, enums, containers, declared exceptions,
// oneway calls, and the embedded hint map.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "echo_kv_gen.h"

namespace {

using hatrpc::sim::Simulator;
using hatrpc::sim::Task;
using namespace std::chrono_literals;

class KvHandler : public genkv::GenKVIf {
 public:
  explicit KvHandler(hatrpc::verbs::Node& node) : node_(node) {}

  Task<genkv::Record> Fetch(const std::string& key) override {
    co_await node_.cpu().compute(200ns);
    auto it = store_.find(key);
    if (it == store_.end())
      throw genkv::NotFound{.key = key, .code = 404};
    co_return it->second;
  }

  Task<void> Store(const genkv::Record& rec) override {
    co_await node_.cpu().compute(200ns);
    store_[rec.key] = rec;
    co_return;
  }

  Task<std::map<std::string, int64_t>> Stats(
      const std::vector<std::string>& which, bool verbose) override {
    std::map<std::string, int64_t> out;
    for (const auto& w : which) out[w] = static_cast<int64_t>(w.size());
    if (verbose) out["total"] = static_cast<int64_t>(store_.size());
    co_return out;
  }

  Task<void> Nudge(int32_t generation) override {
    last_nudge_ = generation;
    co_return;
  }

  int32_t last_nudge() const { return last_nudge_; }

 private:
  hatrpc::verbs::Node& node_;
  std::map<std::string, genkv::Record> store_;
  int32_t last_nudge_ = -1;
};

struct GeneratedFixture : ::testing::Test {
  Simulator sim;
  hatrpc::verbs::Fabric fabric{sim};
  hatrpc::verbs::Node* client_node = fabric.add_node();
  hatrpc::verbs::Node* server_node = fabric.add_node();
  hatrpc::core::HatServer server{*server_node, genkv::GenKV_hints(), {}};
  KvHandler handler{*server_node};
  hatrpc::core::HatConnection conn{*client_node, server};

  GeneratedFixture() { genkv::register_GenKV(server.dispatcher(), handler); }

  void run(std::function<Task<void>(genkv::GenKVClient&)> body) {
    sim.spawn([](GeneratedFixture* self,
                 std::function<Task<void>(genkv::GenKVClient&)> body)
                  -> Task<void> {
      genkv::GenKVClient client(self->conn);
      co_await body(client);
      self->server.stop();
    }(this, std::move(body)));
    sim.run();
    EXPECT_EQ(sim.live_tasks(), 0u);
  }
};

TEST_F(GeneratedFixture, StoreThenFetchRoundTripsStruct) {
  run([](genkv::GenKVClient& c) -> Task<void> {
    genkv::Record rec;
    rec.key = "alpha";
    rec.value = "v1";
    rec.version = 7;
    rec.mode = genkv::Consistency::STRONG;
    co_await c.Store(rec);
    genkv::Record got = co_await c.Fetch("alpha");
    EXPECT_EQ(got, rec);
    EXPECT_EQ(got.mode, genkv::Consistency::STRONG);
  });
}

TEST_F(GeneratedFixture, DeclaredExceptionPropagatesToClient) {
  run([](genkv::GenKVClient& c) -> Task<void> {
    bool caught = false;
    try {
      co_await c.Fetch("missing-key");
    } catch (const genkv::NotFound& e) {
      caught = true;
      EXPECT_EQ(e.key, "missing-key");
      EXPECT_EQ(e.code, 404);
    }
    EXPECT_TRUE(caught);
  });
}

TEST_F(GeneratedFixture, ContainersRoundTrip) {
  run([](genkv::GenKVClient& c) -> Task<void> {
    std::vector<std::string> which;
    which.push_back("aa");
    which.push_back("bbbb");
    which.push_back("c");
    std::map<std::string, int64_t> stats = co_await c.Stats(which, true);
    EXPECT_EQ(stats.size(), 4u);
    EXPECT_EQ(stats["aa"], 2);
    EXPECT_EQ(stats["bbbb"], 4);
    EXPECT_EQ(stats["total"], 0);
  });
}

TEST_F(GeneratedFixture, OnewayReachesHandler) {
  run([this](genkv::GenKVClient& c) -> Task<void> {
    co_await c.Nudge(42);
    EXPECT_EQ(handler.last_nudge(), 42);
  });
}

TEST_F(GeneratedFixture, GeneratedHintsDrivePlanSelection) {
  // Fetch is latency-hinted at the client -> busy WriteIMM; Stats is
  // res_util with 64k payload -> event-polled Write-RNDV.
  const hatrpc::hint::Plan& fetch = conn.plan_for("Fetch");
  EXPECT_EQ(fetch.protocol, hatrpc::proto::ProtocolKind::kDirectWriteImm);
  EXPECT_EQ(fetch.client_poll, hatrpc::sim::PollMode::kBusy);
  const hatrpc::hint::Plan& stats = conn.plan_for("Stats");
  EXPECT_EQ(stats.protocol, hatrpc::proto::ProtocolKind::kWriteRndv);
  EXPECT_EQ(stats.client_poll, hatrpc::sim::PollMode::kEvent);
  EXPECT_EQ(stats.expected_payload, 64u * 1024);
  // Heterogeneous functions on one connection -> distinct channels.
  run([](genkv::GenKVClient& c) -> Task<void> {
    genkv::Record rec;
    rec.key = "k";
    rec.value = "v";
    rec.version = 1;
    co_await c.Store(rec);
    co_await c.Fetch("k");
    std::vector<std::string> which;
    which.push_back("k");
    co_await c.Stats(which, false);
    co_return;
  });
  EXPECT_EQ(conn.channel_count(), 2u);  // WriteIMM shared by Fetch/Store +
                                        // the res_util Write-RNDV channel
}

}  // namespace
