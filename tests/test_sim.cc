// Unit tests for the discrete-event simulation core: clock advance,
// task composition, synchronization primitives, CPU contention model,
// determinism, and RNG statistical sanity.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <utility>
#include <vector>

#include "sim/cpu.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/sync.h"

namespace hatrpc::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0ns);
  EXPECT_EQ(sim.run(), 0ns);
}

TEST(Simulator, SleepAdvancesClock) {
  Simulator sim;
  Time seen{-1};
  sim.spawn([](Simulator& s, Time& seen) -> Task<void> {
    co_await s.sleep(5us);
    seen = s.now();
  }(sim, seen));
  sim.run();
  EXPECT_EQ(seen, 5us);
  EXPECT_EQ(sim.live_tasks(), 0u);
}

TEST(Simulator, SleepsAccumulate) {
  Simulator sim;
  sim.spawn([](Simulator& s) -> Task<void> {
    co_await s.sleep(1us);
    co_await s.sleep(2us);
    co_await s.sleep(3us);
    EXPECT_EQ(s.now(), 6us);
  }(sim));
  EXPECT_EQ(sim.run(), 6us);
}

TEST(Simulator, ConcurrentTasksInterleaveByTime) {
  Simulator sim;
  std::vector<int> order;
  auto worker = [](Simulator& s, std::vector<int>& order, int id,
                   Duration d) -> Task<void> {
    co_await s.sleep(d);
    order.push_back(id);
  };
  sim.spawn(worker(sim, order, 3, 30us));
  sim.spawn(worker(sim, order, 1, 10us));
  sim.spawn(worker(sim, order, 2, 20us));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, SameTimeEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  auto worker = [](Simulator& s, std::vector<int>& order,
                   int id) -> Task<void> {
    co_await s.sleep(1us);
    order.push_back(id);
  };
  for (int i = 0; i < 8; ++i) sim.spawn(worker(sim, order, i));
  sim.run();
  std::vector<int> want(8);
  std::iota(want.begin(), want.end(), 0);
  EXPECT_EQ(order, want);
}

TEST(Simulator, NestedTaskAwait) {
  Simulator sim;
  auto inner = [](Simulator& s) -> Task<int> {
    co_await s.sleep(2us);
    co_return 42;
  };
  int got = 0;
  sim.spawn([](Simulator& s, auto inner, int& got) -> Task<void> {
    got = co_await inner(s);
    EXPECT_EQ(s.now(), 2us);
  }(sim, inner, got));
  sim.run();
  EXPECT_EQ(got, 42);
}

TEST(Simulator, ExceptionPropagatesThroughAwait) {
  Simulator sim;
  auto thrower = [](Simulator& s) -> Task<void> {
    co_await s.sleep(1us);
    throw std::runtime_error("boom");
  };
  bool caught = false;
  sim.spawn([](Simulator& s, auto thrower, bool& caught) -> Task<void> {
    try {
      co_await thrower(s);
    } catch (const std::runtime_error&) {
      caught = true;
    }
  }(sim, thrower, caught));
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(Simulator, ExceptionFromRootTaskRethrownByRun) {
  Simulator sim;
  sim.spawn([](Simulator& s) -> Task<void> {
    co_await s.sleep(1us);
    throw std::runtime_error("root boom");
  }(sim));
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int steps = 0;
  sim.spawn([](Simulator& s, int& steps) -> Task<void> {
    for (int i = 0; i < 100; ++i) {
      co_await s.sleep(1ms);
      ++steps;
    }
  }(sim, steps));
  sim.run_until(Time(10ms));
  EXPECT_EQ(steps, 10);
  EXPECT_EQ(sim.now(), 10ms);
  sim.run();
  EXPECT_EQ(steps, 100);
}

TEST(Simulator, DeadlockedTaskReportedAsLive) {
  Simulator sim;
  Event never(sim);
  sim.spawn([](Event& e) -> Task<void> { co_await e.wait(); }(never));
  sim.run();
  EXPECT_EQ(sim.live_tasks(), 1u);
}

TEST(Sync, EventWakesAllWaiters) {
  Simulator sim;
  Event ev(sim);
  int woke = 0;
  auto waiter = [](Simulator& s, Event& e, int& woke) -> Task<void> {
    co_await e.wait();
    ++woke;
    EXPECT_EQ(s.now(), 7us);
  };
  for (int i = 0; i < 3; ++i) sim.spawn(waiter(sim, ev, woke));
  sim.spawn([](Simulator& s, Event& e) -> Task<void> {
    co_await s.sleep(7us);
    e.set();
  }(sim, ev));
  sim.run();
  EXPECT_EQ(woke, 3);
}

TEST(Sync, EventWaitAfterSetCompletesImmediately) {
  Simulator sim;
  Event ev(sim);
  ev.set();
  bool done = false;
  sim.spawn([](Event& e, bool& done) -> Task<void> {
    co_await e.wait();
    done = true;
  }(ev, done));
  sim.run();
  EXPECT_TRUE(done);
}

TEST(Sync, SemaphoreLimitsConcurrency) {
  Simulator sim;
  Semaphore sem(sim, 2);
  int in_flight = 0, max_in_flight = 0;
  auto worker = [](Simulator& s, Semaphore& sem, int& in_flight,
                   int& max_in) -> Task<void> {
    co_await sem.acquire();
    ++in_flight;
    max_in = std::max(max_in, in_flight);
    co_await s.sleep(10us);
    --in_flight;
    sem.release();
  };
  for (int i = 0; i < 6; ++i)
    sim.spawn(worker(sim, sem, in_flight, max_in_flight));
  sim.run();
  EXPECT_EQ(max_in_flight, 2);
  EXPECT_EQ(sim.now(), 30us);  // 6 workers, 2 at a time, 10us each
}

TEST(Sync, ChannelDeliversInOrder) {
  Simulator sim;
  Channel<int> ch(sim);
  std::vector<int> got;
  sim.spawn([](Channel<int>& ch, std::vector<int>& got) -> Task<void> {
    while (auto v = co_await ch.pop()) got.push_back(*v);
  }(ch, got));
  sim.spawn([](Simulator& s, Channel<int>& ch) -> Task<void> {
    for (int i = 0; i < 5; ++i) {
      co_await s.sleep(1us);
      ch.push(i);
    }
    ch.close();
  }(sim, ch));
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Sync, ChannelPopOnClosedEmptyReturnsNullopt) {
  Simulator sim;
  Channel<int> ch(sim);
  ch.push(9);
  ch.close();
  std::vector<int> got;
  bool saw_end = false;
  sim.spawn([](Channel<int>& ch, std::vector<int>& got,
               bool& saw_end) -> Task<void> {
    while (true) {
      auto v = co_await ch.pop();
      if (!v) {
        saw_end = true;
        break;
      }
      got.push_back(*v);
    }
  }(ch, got, saw_end));
  sim.run();
  EXPECT_EQ(got, std::vector<int>{9});
  EXPECT_TRUE(saw_end);
}

TEST(Sync, WaitGroupJoins) {
  Simulator sim;
  WaitGroup wg(sim);
  Time joined{};
  auto worker = [](Simulator& s, WaitGroup& wg, Duration d) -> Task<void> {
    co_await s.sleep(d);
    wg.done();
  };
  wg.add(3);
  sim.spawn(worker(sim, wg, 5us));
  sim.spawn(worker(sim, wg, 9us));
  sim.spawn(worker(sim, wg, 2us));
  sim.spawn([](Simulator& s, WaitGroup& wg, Time& joined) -> Task<void> {
    co_await wg.wait();
    joined = s.now();
  }(sim, wg, joined));
  sim.run();
  EXPECT_EQ(joined, 9us);
}

TEST(Sync, MutexSerializesCriticalSections) {
  Simulator sim;
  Mutex mu(sim);
  int inside = 0;
  bool overlap = false;
  auto worker = [](Simulator& s, Mutex& mu, int& inside,
                   bool& overlap) -> Task<void> {
    auto g = co_await mu.scoped();
    if (inside != 0) overlap = true;
    ++inside;
    co_await s.sleep(3us);
    --inside;
  };
  for (int i = 0; i < 4; ++i) sim.spawn(worker(sim, mu, inside, overlap));
  sim.run();
  EXPECT_FALSE(overlap);
  EXPECT_EQ(sim.now(), 12us);
}

TEST(Cpu, UncontendedComputeTakesNominalTime) {
  Simulator sim;
  Cpu cpu(sim, {.cores = 4});
  sim.spawn([](Simulator& s, Cpu& cpu) -> Task<void> {
    co_await cpu.compute(10us);
    EXPECT_EQ(s.now(), 10us);
  }(sim, cpu));
  sim.run();
}

TEST(Cpu, OversubscriptionStretchesCompute) {
  Simulator sim;
  Cpu::Params p{.cores = 2, .ctx_switch = 1us};
  Cpu cpu(sim, p);
  // 8 simultaneous computations on 2 cores: each sees factor ~4.
  auto worker = [](Cpu& cpu) -> Task<void> { co_await cpu.compute(10us); };
  for (int i = 0; i < 8; ++i) sim.spawn(worker(cpu));
  Time end = sim.run();
  EXPECT_GT(end, 30us);  // well above the uncontended 10us
  EXPECT_LE(end, 60us);
}

TEST(Cpu, BusyPollersRaiseLoad) {
  Simulator sim;
  Cpu cpu(sim, {.cores = 2});
  EXPECT_DOUBLE_EQ(cpu.oversubscription(), 1.0);
  {
    auto g1 = cpu.busy_guard();
    auto g2 = cpu.busy_guard();
    auto g3 = cpu.busy_guard();
    auto g4 = cpu.busy_guard();
    EXPECT_DOUBLE_EQ(cpu.oversubscription(), 2.0);
    EXPECT_TRUE(cpu.oversubscribed());
  }
  EXPECT_DOUBLE_EQ(cpu.oversubscription(), 1.0);
}

TEST(Cpu, BusyPickupFastWhenUndersubscribed) {
  Simulator sim;
  Cpu cpu(sim, {.cores = 28});
  auto g = cpu.busy_guard();
  EXPECT_LT(cpu.pickup_delay(PollMode::kBusy), 1us);
}

TEST(Cpu, BusyPickupCollapsesWhenOversubscribed) {
  Simulator sim;
  Cpu cpu(sim, {.cores = 28});
  std::vector<Cpu::BusyGuard> guards;
  for (int i = 0; i < 512; ++i) guards.push_back(cpu.busy_guard());
  Duration busy = cpu.pickup_delay(PollMode::kBusy);
  Duration event = cpu.pickup_delay(PollMode::kEvent);
  EXPECT_GT(busy, 10 * event);  // the Fig.5 over-subscription collapse
}

TEST(Cpu, EventPickupPaysInterruptWhenIdle) {
  Simulator sim;
  Cpu cpu(sim, {.cores = 28, .interrupt_wakeup = 3us});
  EXPECT_EQ(cpu.pickup_delay(PollMode::kEvent), 3us);
  EXPECT_LT(cpu.pickup_delay(PollMode::kBusy),
            cpu.pickup_delay(PollMode::kEvent));
}

TEST(CpuCoreBinding, PinnedComputeContendsOnlyOnItsCore) {
  auto pinned = [](Simulator& s, Cpu& cpu, int core, Time& end) -> Task<void> {
    co_await cpu.compute(10us, core);
    end = s.now();
  };
  {
    // Different cores: both run at full speed.
    Simulator sim;
    Cpu cpu(sim, {.cores = 4, .ctx_switch = 1us});
    Time a{}, b{};
    sim.spawn(pinned(sim, cpu, 0, a));
    sim.spawn(pinned(sim, cpu, 1, b));
    sim.run();
    EXPECT_EQ(a, 10us);
    EXPECT_EQ(b, 10us);
  }
  {
    // Same core: the second arrival sees the first resident and
    // time-slices (2x stretch + context switch).
    Simulator sim;
    Cpu cpu(sim, {.cores = 4, .ctx_switch = 1us});
    Time a{}, b{};
    sim.spawn(pinned(sim, cpu, 2, a));
    sim.spawn(pinned(sim, cpu, 2, b));
    sim.run();
    EXPECT_EQ(std::min(a, b), 10us);
    EXPECT_EQ(std::max(a, b), 21us);
  }
  {
    // Core ids wrap modulo the core count: core 6 of 4 IS core 2 — that
    // wrap is how a shard sweep drives over-subscription.
    Simulator sim;
    Cpu cpu(sim, {.cores = 4, .ctx_switch = 1us});
    Time a{}, b{};
    sim.spawn(pinned(sim, cpu, 2, a));
    sim.spawn(pinned(sim, cpu, 6, b));
    sim.run();
    EXPECT_EQ(std::max(a, b), 21us);
  }
}

TEST(CpuCoreBinding, ShardSpinnerSelfCreditsItsCore) {
  // The shard's polling thread IS its compute thread (run-to-completion):
  // with one spinner pinned, pinned compute on that core is uncontended.
  Simulator sim;
  Cpu cpu(sim, {.cores = 2, .ctx_switch = 1us});
  auto spin = cpu.pin_spinner(0);
  Time end{};
  sim.spawn([](Simulator& s, Cpu& cpu, Time& end) -> Task<void> {
    co_await cpu.compute(10us, 0);
    end = s.now();
  }(sim, cpu, end));
  sim.run();
  EXPECT_EQ(end, 10us);
}

TEST(CpuCoreBinding, TwoSpinnersOnOneCoreCollapsePickup) {
  Simulator sim;
  Cpu cpu(sim, {.cores = 2});
  auto s0 = cpu.pin_spinner(0);
  const Duration alone = cpu.pickup_delay(PollMode::kBusy, 0);
  EXPECT_LT(alone, 1us);  // a lone spinner reacts within its check interval
  auto s1 = cpu.pin_spinner(0);  // a second shard lands on the same core
  const Duration shared = cpu.pickup_delay(PollMode::kBusy, 0);
  EXPECT_GT(shared, 10 * alone);  // reschedule quantum + context switch
  // A shard alone on the other core is unaffected.
  auto s2 = cpu.pin_spinner(1);
  EXPECT_EQ(cpu.pickup_delay(PollMode::kBusy, 1), alone);
}

TEST(CpuCoreBinding, UnboundModelUnchangedWhileNothingIsPinned) {
  // Guard for the bit-identity requirement: with zero pinned spinners or
  // pinned work, the floating formulas see exactly the legacy inputs.
  Simulator sim;
  Cpu cpu(sim, {.cores = 2});
  EXPECT_DOUBLE_EQ(cpu.oversubscription(), 1.0);
  {
    auto g1 = cpu.busy_guard();
    auto g2 = cpu.busy_guard();
    auto g3 = cpu.busy_guard();
    auto g4 = cpu.busy_guard();
    EXPECT_DOUBLE_EQ(cpu.oversubscription(), 2.0);
  }
  // Pinned spinners DO count toward whole-node demand.
  auto s0 = cpu.pin_spinner(0);
  auto s1 = cpu.pin_spinner(1);
  auto s2 = cpu.pin_spinner(0);
  EXPECT_DOUBLE_EQ(cpu.oversubscription(), 1.5);
  EXPECT_EQ(cpu.busy_pollers(), 3);
  EXPECT_EQ(cpu.spinners(0), 2);
  EXPECT_EQ(cpu.spinners(1), 1);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7), c(8);
  bool all_equal = true, any_diff_seed = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t x = a.next(), y = b.next(), z = c.next();
    all_equal &= (x == y);
    any_diff_seed |= (x != z);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_seed);
}

TEST(Rng, BoundedStaysInRange) {
  Rng r(123);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.bounded(17), 17u);
    int64_t u = r.uniform(-5, 5);
    EXPECT_GE(u, -5);
    EXPECT_LE(u, 5);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng r(99);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += r.uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Simulator, DeterministicEventCount) {
  auto run_once = []() {
    Simulator sim;
    Channel<int> ch(sim);
    sim.spawn([](Simulator& s, Channel<int>& ch) -> Task<void> {
      for (int i = 0; i < 100; ++i) {
        co_await s.sleep(Duration(i * 10));
        ch.push(i);
      }
      ch.close();
    }(sim, ch));
    sim.spawn([](Channel<int>& ch) -> Task<void> {
      while (co_await ch.pop()) {
      }
    }(ch));
    sim.run();
    return sim.events_processed();
  };
  EXPECT_EQ(run_once(), run_once());
}

// ---------------------------------------------------------------------------
// Timing-wheel scheduler and TimerHandle API (DESIGN.md §12).

// Awaiter exposing the raw schedule_at() handle so tests can cancel and
// reschedule a suspended coroutine's wakeup from the outside.
struct ScheduleAt {
  Simulator& sim;
  Time t;
  TimerHandle* out;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) { *out = sim.schedule_at(t, h); }
  void await_resume() const noexcept {}
};

TEST(TimingWheel, SameTimestampFifoAcrossWheelAndHeap) {
  // Events at one timestamp must dispatch in schedule order even when some
  // were parked in the overflow heap (scheduled while T was beyond the wheel
  // span) and others were inserted into the wheel (scheduled once the cursor
  // had advanced near T).
  Simulator sim;
  constexpr Time kT{uint64_t(1) << 49};  // beyond the 2^48 ns span from t=0
  std::vector<int> order;
  auto at_t = [](Simulator& s, std::vector<int>& order, int id,
                 Time wake) -> Task<void> {
    co_await s.sleep_until(wake);
    order.push_back(id);
  };
  // ids 0,1 scheduled at t=0 for kT: overflow heap.
  sim.spawn(at_t(sim, order, 0, kT));
  sim.spawn(at_t(sim, order, 1, kT));
  // id 2 first sleeps to kT-100ns, then schedules for kT: lands in the wheel.
  sim.spawn([](Simulator& s, std::vector<int>& order, auto at_t,
               Time wake) -> Task<void> {
    co_await s.sleep_until(wake - Duration(100));
    co_await at_t(s, order, 2, wake);
  }(sim, order, at_t, kT));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sim.now(), kT);
}

TEST(TimingWheel, RolloverAtFarFutureTimestamps) {
  // Sleeps far beyond the wheel span (64^8 ns ~ 3.2 days) re-window the
  // wheel around the overflow heap's front without losing ordering.
  Simulator sim;
  std::vector<int> order;
  auto worker = [](Simulator& s, std::vector<int>& order, int id,
                   Duration d) -> Task<void> {
    co_await s.sleep(d);
    order.push_back(id);
    co_await s.sleep(d);
    order.push_back(id + 10);
  };
  constexpr Duration kDay{86'400'000'000'000};
  sim.spawn(worker(sim, order, 1, 4 * kDay));
  sim.spawn(worker(sim, order, 2, 7 * kDay));
  sim.spawn(worker(sim, order, 3, Duration(500)));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{3, 13, 1, 2, 11, 12}));
  EXPECT_EQ(sim.now(), Time(14 * kDay));
}

TEST(TimingWheel, SpanBoundaryCrossingGoesThroughOverflow) {
  // Regression: a timer a short *distance* ahead of the cursor can still sit
  // in the next 64^8-aligned block (tt ^ cursor >= 2^48). The wheel-fit test
  // must use the XOR, not the distance — the old distance check linked such
  // nodes at level 8, out of bounds, where no scan could ever find them.
  Simulator sim;
  constexpr uint64_t kSpan = uint64_t(1) << 48;
  std::vector<int> order;
  auto at_t = [](Simulator& s, std::vector<int>& order, int id,
                 Time wake) -> Task<void> {
    co_await s.sleep_until(wake);
    order.push_back(id);
  };
  sim.spawn([](Simulator& s, std::vector<int>& order,
               auto at_t) -> Task<void> {
    // Park the cursor just below the 2^48 boundary...
    co_await s.sleep_until(Time(kSpan - 1000));
    // ...then schedule wakeups 500 ns apart straddling it. Both are within
    // distance-kSpan of the cursor; the second crosses the aligned boundary.
    co_await at_t(s, order, 1, Time(kSpan - 500));
    co_await at_t(s, order, 2, Time(kSpan + 500));
  }(sim, order, at_t));
  sim.spawn(at_t(sim, order, 3, Time(kSpan + 500)));  // heap from t=0, same T
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
  EXPECT_EQ(sim.now(), Time(kSpan + 500));
  EXPECT_EQ(sim.pending_timers(), 0u);
}

TEST(ShallowQueue, MigrationPastCapacityPreservesOrder) {
  // The scheduler starts in a sorted-vector fast path and migrates to the
  // timing wheel when pending depth crosses the small-queue capacity (64).
  // Spawning ~3x that many sleepers forces the migration mid-insert; the
  // dispatch order must still be (timestamp, then schedule order).
  Simulator sim;
  constexpr int kN = 200;
  std::vector<int> order;
  auto sleeper = [](Simulator& s, std::vector<int>& order, int id,
                    Duration d) -> Task<void> {
    co_await s.sleep(d);
    order.push_back(id);
  };
  std::vector<std::pair<uint64_t, int>> expect;
  for (int i = 0; i < kN; ++i) {
    // Scrambled wakeups with deliberate collisions (the % 59 folds many ids
    // onto the same timestamp, exercising the equal-time FIFO rule).
    const uint64_t t_us = 1 + (uint64_t(i) * 37) % 59;
    sim.spawn(sleeper(sim, order, i, Duration(t_us * 1000)));
    expect.emplace_back(t_us, i);
  }
  sim.run();
  std::stable_sort(expect.begin(), expect.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  ASSERT_EQ(order.size(), size_t(kN));
  for (int i = 0; i < kN; ++i) EXPECT_EQ(order[i], expect[i].second) << "at " << i;
  EXPECT_EQ(sim.pending_timers(), 0u);
}

TEST(ShallowQueue, ReArmsAfterWheelDrainsAndStaysCancellable) {
  // Push past the small-queue capacity so the run starts on the wheel, let
  // everything drain, then schedule (and cancel) in the re-armed fast path.
  Simulator sim;
  std::vector<int> order;
  auto sleeper = [](Simulator& s, std::vector<int>& order, int id,
                    Duration d) -> Task<void> {
    co_await s.sleep(d);
    order.push_back(id);
  };
  sim.spawn([](Simulator& s, std::vector<int>& order,
               auto sleeper) -> Task<void> {
    for (int i = 0; i < 100; ++i) s.spawn(sleeper(s, order, i, Duration(1000 + i)));
    co_await s.sleep(10us);  // everything above has drained by now
    TimerHandle th;
    bool fired = false;
    s.spawn([](Simulator& s2, TimerHandle& th2, bool& f) -> Task<void> {
      co_await ScheduleAt{s2, s2.now() + Duration(5000), &th2};
      f = true;
    }(s, th, fired));
    s.spawn(sleeper(s, order, 1000, 2us));
    s.spawn(sleeper(s, order, 1001, 1us));
    co_await s.sleep(500ns);
    EXPECT_TRUE(th.cancel());  // cancel while resident in the shallow queue
    co_await s.sleep(10us);
    EXPECT_FALSE(fired);
  }(sim, order, sleeper));
  Simulator::RunResult r = sim.run();
  ASSERT_EQ(order.size(), 102u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(order[100], 1001);  // 1us before 2us in the re-armed queue
  EXPECT_EQ(order[101], 1000);
  EXPECT_EQ(r.timers_cancelled, 1u);
  EXPECT_EQ(sim.pending_timers(), 0u);
}

TEST(TimerHandle, CancelledTimerDoesNotFire) {
  Simulator sim;
  TimerHandle th;
  bool fired = false;
  sim.spawn([](Simulator& s, TimerHandle& th, bool& fired) -> Task<void> {
    co_await ScheduleAt{s, Time(10us), &th};
    fired = true;
  }(sim, th, fired));
  sim.spawn([](Simulator& s, TimerHandle& th) -> Task<void> {
    co_await s.sleep(1us);
    EXPECT_TRUE(th.active());
    EXPECT_TRUE(th.cancel());
    EXPECT_FALSE(th.active());
    EXPECT_FALSE(th.cancel());  // second cancel is a no-op
  }(sim, th));
  Simulator::RunResult r = sim.run();
  EXPECT_FALSE(fired);
  // The cancelled wakeup never dispatched: virtual time stops at the
  // canceller's 1us, not the victim's 10us.
  EXPECT_EQ(r.end_time, Time(1us));
  EXPECT_EQ(r.timers_cancelled, 1u);
  EXPECT_EQ(sim.live_tasks(), 1u);  // the victim never resumed
}

TEST(TimerHandle, RescheduleMovesTimerToBackOfNewTimestamp) {
  Simulator sim;
  TimerHandle th;
  std::vector<int> order;
  sim.spawn([](Simulator& s, TimerHandle& th,
               std::vector<int>& order) -> Task<void> {
    co_await ScheduleAt{s, Time(10us), &th};
    order.push_back(1);
  }(sim, th, order));
  sim.spawn([](Simulator& s, std::vector<int>& order) -> Task<void> {
    co_await s.sleep(30us);
    order.push_back(2);
  }(sim, order));
  sim.spawn([](Simulator& s, TimerHandle& th) -> Task<void> {
    co_await s.sleep(1us);
    EXPECT_TRUE(th.reschedule(Time(30us)));  // deferred past the 30us sleeper
    EXPECT_TRUE(th.active());                // still pending after the move
  }(sim, th));
  Simulator::RunResult r = sim.run();
  // The rescheduled timer dispatches after the pre-existing 30us event
  // (newest at its timestamp), and a reschedule is not a cancellation.
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
  EXPECT_EQ(r.end_time, Time(30us));
  EXPECT_EQ(r.timers_cancelled, 0u);
  EXPECT_FALSE(th.reschedule(Time(50us)));  // already fired: stale handle
}

TEST(TimerHandle, WaitUntilCancelsDeadlineTimerOnNotify) {
  // Event::wait_until used to leave an uncancellable wakeup in the queue
  // until the deadline; now the losing timer is removed on notify, so the
  // run ends at the set() time and the cancellation shows up in RunResult.
  Simulator sim;
  Event ev(sim);
  bool got = false;
  sim.spawn([](Event& ev, bool& got) -> Task<void> {
    got = co_await ev.wait_until(Time(1ms));
  }(ev, got));
  sim.spawn([](Simulator& s, Event& ev) -> Task<void> {
    co_await s.sleep(3us);
    ev.set();
  }(sim, ev));
  Simulator::RunResult r = sim.run();
  EXPECT_TRUE(got);
  EXPECT_EQ(r.end_time, Time(3us));  // nothing lingered until the 1ms deadline
  EXPECT_EQ(r.timers_cancelled, 1u);
  EXPECT_EQ(r.live_tasks, 0u);
}

TEST(Sync, SemaphoreReleaseManyStopsAtWaiterCount) {
  Simulator sim;
  Semaphore sem(sim, 0);
  int resumed = 0;
  for (int i = 0; i < 2; ++i) {
    sim.spawn([](Semaphore& sem, int& resumed) -> Task<void> {
      co_await sem.acquire();
      ++resumed;
    }(sem, resumed));
  }
  sim.spawn([](Simulator& s, Semaphore& sem) -> Task<void> {
    co_await s.sleep(1us);
    sem.release(5);  // 2 waiters: wake both, bank the other 3 permits
  }(sim, sem));
  sim.run();
  EXPECT_EQ(resumed, 2);
  EXPECT_EQ(sem.available(), 3u);
}

TEST(Arena, FrameArenaReusesSteadyStateAllocations) {
  if (!FrameArena::pooling_enabled()) {
    GTEST_SKIP() << "arena passes through under sanitizers";
  }
  auto round = []() {
    Simulator sim;
    Event ev(sim);
    for (int i = 0; i < 64; ++i) {
      sim.spawn([](Simulator& s, Event& ev) -> Task<void> {
        co_await s.sleep(Duration(100));
        (void)co_await ev.wait_until(s.now() + Duration(50));
      }(sim, ev));
    }
    sim.run();
  };
  round();  // warm the freelists for every size class this workload touches
  const FrameArena::Stats before = FrameArena::instance().stats();
  round();
  const FrameArena::Stats after = FrameArena::instance().stats();
  // Steady state: the second identical round is served entirely from
  // recycled blocks — zero new blocks from ::operator new.
  EXPECT_EQ(after.fresh_blocks, before.fresh_blocks);
  EXPECT_GT(after.reuses, before.reuses);
}

TEST(Determinism, SameSeedProducesByteIdenticalTrace) {
  // Pin the dispatch schedule itself, not just aggregate counts: two runs
  // with one seed must produce byte-identical (time, task, step) traces
  // through wheel, cascade, overflow, and cancellation paths alike.
  auto trace_once = [](uint64_t seed) {
    Simulator sim;
    Rng rng(seed);
    std::string trace;
    Event ev(sim);
    for (int id = 0; id < 8; ++id) {
      sim.spawn([](Simulator& s, Rng& rng, std::string& trace, Event& ev,
                   int id) -> Task<void> {
        for (int step = 0; step < 50; ++step) {
          uint64_t r = rng.next() % 100;
          if (r < 2) {
            // Far-future hop: exercises the overflow heap and re-windowing.
            co_await s.sleep(Duration(86'400'000'000'000 + (rng.next() & 0xffff)));
          } else if (r < 30) {
            // Timed wait that always times out: cancel-path traffic.
            (void)co_await ev.wait_until(s.now() + Duration(1 + (rng.next() & 0xff)));
          } else {
            co_await s.sleep(Duration(rng.next() & 0xfff));
          }
          trace += std::to_string(s.now().count());
          trace += ':';
          trace += std::to_string(id);
          trace += ':';
          trace += std::to_string(step);
          trace += '\n';
        }
      }(sim, rng, trace, ev, id));
    }
    Simulator::RunResult r = sim.run();
    trace += "processed=" + std::to_string(r.events_processed);
    trace += " cancelled=" + std::to_string(r.timers_cancelled);
    trace += " end=" + std::to_string(r.end_time.count());
    return trace;
  };
  std::string a = trace_once(42);
  EXPECT_EQ(a, trace_once(42));
  EXPECT_NE(a, trace_once(43));  // the trace actually depends on the seed
}

TEST(Simulator, RunResultReportsCounters) {
  Simulator sim;
  Event ev(sim);
  sim.spawn([](Simulator& s, Event& ev) -> Task<void> {
    co_await s.sleep(1us);
    (void)co_await ev.wait_until(s.now() + 1us);  // times out at 2us
    co_await s.sleep(1us);
  }(sim, ev));
  Simulator::RunResult r = sim.run();
  EXPECT_EQ(r.end_time, Time(3us));
  EXPECT_EQ(r, Time(3us));  // legacy `sim.run() == Time` comparisons compile
  Time legacy = sim.run();  // and legacy `Time end = sim.run();` assignment
  EXPECT_EQ(legacy, Time(3us));
  EXPECT_EQ(r.events_processed, 3u);
  EXPECT_EQ(r.timers_cancelled, 0u);  // the timeout fired; nothing cancelled
  EXPECT_EQ(r.live_tasks, 0u);
  EXPECT_GE(r.peak_queue_depth, 1u);
  EXPECT_EQ(r.events_processed, sim.events_processed());
}

}  // namespace
}  // namespace hatrpc::sim
