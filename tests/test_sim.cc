// Unit tests for the discrete-event simulation core: clock advance,
// task composition, synchronization primitives, CPU contention model,
// determinism, and RNG statistical sanity.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "sim/cpu.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/sync.h"

namespace hatrpc::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0ns);
  EXPECT_EQ(sim.run(), 0ns);
}

TEST(Simulator, SleepAdvancesClock) {
  Simulator sim;
  Time seen{-1};
  sim.spawn([](Simulator& s, Time& seen) -> Task<void> {
    co_await s.sleep(5us);
    seen = s.now();
  }(sim, seen));
  sim.run();
  EXPECT_EQ(seen, 5us);
  EXPECT_EQ(sim.live_tasks(), 0u);
}

TEST(Simulator, SleepsAccumulate) {
  Simulator sim;
  sim.spawn([](Simulator& s) -> Task<void> {
    co_await s.sleep(1us);
    co_await s.sleep(2us);
    co_await s.sleep(3us);
    EXPECT_EQ(s.now(), 6us);
  }(sim));
  EXPECT_EQ(sim.run(), 6us);
}

TEST(Simulator, ConcurrentTasksInterleaveByTime) {
  Simulator sim;
  std::vector<int> order;
  auto worker = [](Simulator& s, std::vector<int>& order, int id,
                   Duration d) -> Task<void> {
    co_await s.sleep(d);
    order.push_back(id);
  };
  sim.spawn(worker(sim, order, 3, 30us));
  sim.spawn(worker(sim, order, 1, 10us));
  sim.spawn(worker(sim, order, 2, 20us));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, SameTimeEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  auto worker = [](Simulator& s, std::vector<int>& order,
                   int id) -> Task<void> {
    co_await s.sleep(1us);
    order.push_back(id);
  };
  for (int i = 0; i < 8; ++i) sim.spawn(worker(sim, order, i));
  sim.run();
  std::vector<int> want(8);
  std::iota(want.begin(), want.end(), 0);
  EXPECT_EQ(order, want);
}

TEST(Simulator, NestedTaskAwait) {
  Simulator sim;
  auto inner = [](Simulator& s) -> Task<int> {
    co_await s.sleep(2us);
    co_return 42;
  };
  int got = 0;
  sim.spawn([](Simulator& s, auto inner, int& got) -> Task<void> {
    got = co_await inner(s);
    EXPECT_EQ(s.now(), 2us);
  }(sim, inner, got));
  sim.run();
  EXPECT_EQ(got, 42);
}

TEST(Simulator, ExceptionPropagatesThroughAwait) {
  Simulator sim;
  auto thrower = [](Simulator& s) -> Task<void> {
    co_await s.sleep(1us);
    throw std::runtime_error("boom");
  };
  bool caught = false;
  sim.spawn([](Simulator& s, auto thrower, bool& caught) -> Task<void> {
    try {
      co_await thrower(s);
    } catch (const std::runtime_error&) {
      caught = true;
    }
  }(sim, thrower, caught));
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(Simulator, ExceptionFromRootTaskRethrownByRun) {
  Simulator sim;
  sim.spawn([](Simulator& s) -> Task<void> {
    co_await s.sleep(1us);
    throw std::runtime_error("root boom");
  }(sim));
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int steps = 0;
  sim.spawn([](Simulator& s, int& steps) -> Task<void> {
    for (int i = 0; i < 100; ++i) {
      co_await s.sleep(1ms);
      ++steps;
    }
  }(sim, steps));
  sim.run_until(Time(10ms));
  EXPECT_EQ(steps, 10);
  EXPECT_EQ(sim.now(), 10ms);
  sim.run();
  EXPECT_EQ(steps, 100);
}

TEST(Simulator, DeadlockedTaskReportedAsLive) {
  Simulator sim;
  Event never(sim);
  sim.spawn([](Event& e) -> Task<void> { co_await e.wait(); }(never));
  sim.run();
  EXPECT_EQ(sim.live_tasks(), 1u);
}

TEST(Sync, EventWakesAllWaiters) {
  Simulator sim;
  Event ev(sim);
  int woke = 0;
  auto waiter = [](Simulator& s, Event& e, int& woke) -> Task<void> {
    co_await e.wait();
    ++woke;
    EXPECT_EQ(s.now(), 7us);
  };
  for (int i = 0; i < 3; ++i) sim.spawn(waiter(sim, ev, woke));
  sim.spawn([](Simulator& s, Event& e) -> Task<void> {
    co_await s.sleep(7us);
    e.set();
  }(sim, ev));
  sim.run();
  EXPECT_EQ(woke, 3);
}

TEST(Sync, EventWaitAfterSetCompletesImmediately) {
  Simulator sim;
  Event ev(sim);
  ev.set();
  bool done = false;
  sim.spawn([](Event& e, bool& done) -> Task<void> {
    co_await e.wait();
    done = true;
  }(ev, done));
  sim.run();
  EXPECT_TRUE(done);
}

TEST(Sync, SemaphoreLimitsConcurrency) {
  Simulator sim;
  Semaphore sem(sim, 2);
  int in_flight = 0, max_in_flight = 0;
  auto worker = [](Simulator& s, Semaphore& sem, int& in_flight,
                   int& max_in) -> Task<void> {
    co_await sem.acquire();
    ++in_flight;
    max_in = std::max(max_in, in_flight);
    co_await s.sleep(10us);
    --in_flight;
    sem.release();
  };
  for (int i = 0; i < 6; ++i)
    sim.spawn(worker(sim, sem, in_flight, max_in_flight));
  sim.run();
  EXPECT_EQ(max_in_flight, 2);
  EXPECT_EQ(sim.now(), 30us);  // 6 workers, 2 at a time, 10us each
}

TEST(Sync, ChannelDeliversInOrder) {
  Simulator sim;
  Channel<int> ch(sim);
  std::vector<int> got;
  sim.spawn([](Channel<int>& ch, std::vector<int>& got) -> Task<void> {
    while (auto v = co_await ch.pop()) got.push_back(*v);
  }(ch, got));
  sim.spawn([](Simulator& s, Channel<int>& ch) -> Task<void> {
    for (int i = 0; i < 5; ++i) {
      co_await s.sleep(1us);
      ch.push(i);
    }
    ch.close();
  }(sim, ch));
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Sync, ChannelPopOnClosedEmptyReturnsNullopt) {
  Simulator sim;
  Channel<int> ch(sim);
  ch.push(9);
  ch.close();
  std::vector<int> got;
  bool saw_end = false;
  sim.spawn([](Channel<int>& ch, std::vector<int>& got,
               bool& saw_end) -> Task<void> {
    while (true) {
      auto v = co_await ch.pop();
      if (!v) {
        saw_end = true;
        break;
      }
      got.push_back(*v);
    }
  }(ch, got, saw_end));
  sim.run();
  EXPECT_EQ(got, std::vector<int>{9});
  EXPECT_TRUE(saw_end);
}

TEST(Sync, WaitGroupJoins) {
  Simulator sim;
  WaitGroup wg(sim);
  Time joined{};
  auto worker = [](Simulator& s, WaitGroup& wg, Duration d) -> Task<void> {
    co_await s.sleep(d);
    wg.done();
  };
  wg.add(3);
  sim.spawn(worker(sim, wg, 5us));
  sim.spawn(worker(sim, wg, 9us));
  sim.spawn(worker(sim, wg, 2us));
  sim.spawn([](Simulator& s, WaitGroup& wg, Time& joined) -> Task<void> {
    co_await wg.wait();
    joined = s.now();
  }(sim, wg, joined));
  sim.run();
  EXPECT_EQ(joined, 9us);
}

TEST(Sync, MutexSerializesCriticalSections) {
  Simulator sim;
  Mutex mu(sim);
  int inside = 0;
  bool overlap = false;
  auto worker = [](Simulator& s, Mutex& mu, int& inside,
                   bool& overlap) -> Task<void> {
    auto g = co_await mu.scoped();
    if (inside != 0) overlap = true;
    ++inside;
    co_await s.sleep(3us);
    --inside;
  };
  for (int i = 0; i < 4; ++i) sim.spawn(worker(sim, mu, inside, overlap));
  sim.run();
  EXPECT_FALSE(overlap);
  EXPECT_EQ(sim.now(), 12us);
}

TEST(Cpu, UncontendedComputeTakesNominalTime) {
  Simulator sim;
  Cpu cpu(sim, {.cores = 4});
  sim.spawn([](Simulator& s, Cpu& cpu) -> Task<void> {
    co_await cpu.compute(10us);
    EXPECT_EQ(s.now(), 10us);
  }(sim, cpu));
  sim.run();
}

TEST(Cpu, OversubscriptionStretchesCompute) {
  Simulator sim;
  Cpu::Params p{.cores = 2, .ctx_switch = 1us};
  Cpu cpu(sim, p);
  // 8 simultaneous computations on 2 cores: each sees factor ~4.
  auto worker = [](Cpu& cpu) -> Task<void> { co_await cpu.compute(10us); };
  for (int i = 0; i < 8; ++i) sim.spawn(worker(cpu));
  Time end = sim.run();
  EXPECT_GT(end, 30us);  // well above the uncontended 10us
  EXPECT_LE(end, 60us);
}

TEST(Cpu, BusyPollersRaiseLoad) {
  Simulator sim;
  Cpu cpu(sim, {.cores = 2});
  EXPECT_DOUBLE_EQ(cpu.oversubscription(), 1.0);
  {
    auto g1 = cpu.busy_guard();
    auto g2 = cpu.busy_guard();
    auto g3 = cpu.busy_guard();
    auto g4 = cpu.busy_guard();
    EXPECT_DOUBLE_EQ(cpu.oversubscription(), 2.0);
    EXPECT_TRUE(cpu.oversubscribed());
  }
  EXPECT_DOUBLE_EQ(cpu.oversubscription(), 1.0);
}

TEST(Cpu, BusyPickupFastWhenUndersubscribed) {
  Simulator sim;
  Cpu cpu(sim, {.cores = 28});
  auto g = cpu.busy_guard();
  EXPECT_LT(cpu.pickup_delay(PollMode::kBusy), 1us);
}

TEST(Cpu, BusyPickupCollapsesWhenOversubscribed) {
  Simulator sim;
  Cpu cpu(sim, {.cores = 28});
  std::vector<Cpu::BusyGuard> guards;
  for (int i = 0; i < 512; ++i) guards.push_back(cpu.busy_guard());
  Duration busy = cpu.pickup_delay(PollMode::kBusy);
  Duration event = cpu.pickup_delay(PollMode::kEvent);
  EXPECT_GT(busy, 10 * event);  // the Fig.5 over-subscription collapse
}

TEST(Cpu, EventPickupPaysInterruptWhenIdle) {
  Simulator sim;
  Cpu cpu(sim, {.cores = 28, .interrupt_wakeup = 3us});
  EXPECT_EQ(cpu.pickup_delay(PollMode::kEvent), 3us);
  EXPECT_LT(cpu.pickup_delay(PollMode::kBusy),
            cpu.pickup_delay(PollMode::kEvent));
}

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7), c(8);
  bool all_equal = true, any_diff_seed = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t x = a.next(), y = b.next(), z = c.next();
    all_equal &= (x == y);
    any_diff_seed |= (x != z);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_seed);
}

TEST(Rng, BoundedStaysInRange) {
  Rng r(123);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.bounded(17), 17u);
    int64_t u = r.uniform(-5, 5);
    EXPECT_GE(u, -5);
    EXPECT_LE(u, 5);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng r(99);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += r.uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Simulator, DeterministicEventCount) {
  auto run_once = []() {
    Simulator sim;
    Channel<int> ch(sim);
    sim.spawn([](Simulator& s, Channel<int>& ch) -> Task<void> {
      for (int i = 0; i < 100; ++i) {
        co_await s.sleep(Duration(i * 10));
        ch.push(i);
      }
      ch.close();
    }(sim, ch));
    sim.spawn([](Channel<int>& ch) -> Task<void> {
      while (co_await ch.pop()) {
      }
    }(ch));
    sim.run();
    return sim.events_processed();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace hatrpc::sim
