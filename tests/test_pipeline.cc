// Windowed (pipelined) channel tests: N in-flight calls per channel with
// slot-tagged completion routing. Covers every protocol's windowed path
// (no slot cross-talk), window stalls, the fault-injected chaos harness
// composed with ReliableChannel (same-seed determinism), the SRQ-backed
// thrift server, and the headline speedup: a filled window beats the
// one-outstanding-call channel by pipelining wire, NIC, and handler time.
#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>
#include <vector>

#include "proto/channel.h"
#include "proto/reliable.h"
#include "sim/sync.h"
#include "thrift/rdma.h"

namespace hatrpc {
namespace {

using proto::Buffer;
using proto::ChannelConfig;
using proto::ProtocolKind;
using proto::View;
using sim::PollMode;
using sim::Simulator;
using sim::Task;
using namespace std::chrono_literals;

struct Bed {
  Simulator sim;
  verbs::Fabric fabric{sim};
  verbs::Node* cl = fabric.add_node();
  verbs::Node* sv = fabric.add_node();
};

proto::Handler echo_handler() {
  return [](View req) -> Task<Buffer> {
    co_return Buffer(req.begin(), req.end());
  };
}

/// Unique payload per (lane, iteration): length and bytes both vary, so a
/// response routed to the wrong slot cannot pass the comparison.
Buffer lane_payload(uint32_t lane, int i) {
  Buffer b(24 + 8 * lane + size_t(i), std::byte(0x30 + lane * 7 + i));
  b[0] = std::byte(lane);
  b[1] = std::byte(i);
  return b;
}

/// Drives `lanes` concurrent lanes of `iters` echo calls each over one
/// channel and verifies every response matches its own request.
void drive_echo(Bed& bed, proto::RpcChannel& ch, uint32_t lanes, int iters) {
  sim::WaitGroup wg(bed.sim);
  wg.add(lanes);
  for (uint32_t l = 0; l < lanes; ++l) {
    bed.sim.spawn([](proto::RpcChannel& ch, uint32_t lane, int iters,
                     sim::WaitGroup& wg) -> Task<void> {
      for (int i = 0; i < iters; ++i) {
        Buffer req = lane_payload(lane, i);
        auto r = co_await ch.call(req, uint32_t(req.size()));
        EXPECT_TRUE(r.ok()) << "lane " << lane << " call " << i;
        if (r.ok()) {
          EXPECT_EQ(*r, req) << "slot cross-talk: lane " << lane
                             << " call " << i;
        }
      }
      wg.done();
    }(ch, l, iters, wg));
  }
  bed.sim.spawn([](Bed& bed, sim::WaitGroup& wg,
                   proto::RpcChannel& ch) -> Task<void> {
    co_await wg.wait();
    ch.shutdown();
  }(bed, wg, ch));
  bed.sim.run();
  EXPECT_EQ(bed.sim.live_tasks(), 0u);
}

class WindowedProtocol : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(WindowedProtocol, Window8EchoNoCrossTalk) {
  Bed bed;
  ChannelConfig cfg;
  cfg.with_poll(PollMode::kBusy).with_max_msg(8 << 10).with_window(8);
  auto ch = proto::make_channel(GetParam(), *bed.cl, *bed.sv, echo_handler(),
                                cfg);
  drive_echo(bed, *ch, /*lanes=*/8, /*iters=*/4);
  EXPECT_EQ(ch->stats().calls, 32u);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, WindowedProtocol,
    ::testing::Values(ProtocolKind::kEagerSendRecv,
                      ProtocolKind::kDirectWriteSend,
                      ProtocolKind::kChainedWriteSend,
                      ProtocolKind::kWriteRndv, ProtocolKind::kReadRndv,
                      ProtocolKind::kDirectWriteImm, ProtocolKind::kPilaf,
                      ProtocolKind::kFarm, ProtocolKind::kRfp,
                      ProtocolKind::kHerd, ProtocolKind::kHybridEagerRndv),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) {
      std::string name(proto::to_string(info.param));
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

TEST(Pipeline, EventPolledWindowedImm) {
  // The slot-tagged imm path through the event poller (interrupt pickup).
  Bed bed;
  ChannelConfig cfg;
  cfg.with_poll(PollMode::kEvent).with_max_msg(4 << 10).with_window(4);
  auto ch = proto::make_channel(ProtocolKind::kDirectWriteImm, *bed.cl,
                                *bed.sv, echo_handler(), cfg);
  drive_echo(bed, *ch, 4, 4);
}

TEST(Pipeline, WindowStallsAreCounted) {
  // 4 lanes over a window of 2: at least two acquisitions must block.
  Bed bed;
  ChannelConfig cfg;
  cfg.with_poll(PollMode::kBusy).with_max_msg(4 << 10).with_window(2);
  auto ch = proto::make_channel(ProtocolKind::kDirectWriteImm, *bed.cl,
                                *bed.sv, echo_handler(), cfg);
  drive_echo(bed, *ch, 4, 2);
  EXPECT_GT(bed.cl->counters().get(obs::Ctr::kWindowStalls), 0u);
  EXPECT_GT(bed.fabric.obs().counters.channel(0).get(obs::Ctr::kWindowStalls),
            0u);
}

TEST(Pipeline, WindowOneCountsNoStalls) {
  Bed bed;
  ChannelConfig cfg;
  cfg.with_poll(PollMode::kBusy).with_max_msg(4 << 10).with_window(1);
  auto ch = proto::make_channel(ProtocolKind::kDirectWriteImm, *bed.cl,
                                *bed.sv, echo_handler(), cfg);
  drive_echo(bed, *ch, 1, 4);
  EXPECT_EQ(bed.cl->counters().get(obs::Ctr::kWindowStalls), 0u);
}

/// The chaos harness: window=8 ReliableChannel over a lossy, jittery wire.
/// Returns the deterministic counter dump so callers can compare runs.
std::string chaos_run() {
  Bed bed;
  auto plan = std::make_unique<verbs::FaultPlan>(123);
  plan->profile.drop = 0.05;
  plan->profile.delay = 0.10;
  bed.fabric.set_fault_plan(std::move(plan));
  ChannelConfig cfg;
  cfg.with_poll(PollMode::kBusy).with_max_msg(8 << 10).with_window(8);
  auto ch = proto::make_reliable_channel(ProtocolKind::kDirectWriteImm,
                                         *bed.cl, *bed.sv, echo_handler(),
                                         cfg);
  drive_echo(bed, *ch, /*lanes=*/8, /*iters=*/4);
  return bed.fabric.obs().counters.dump();
}

TEST(Pipeline, ReliableWindowedSurvivesFaults) {
  // drive_echo asserts all 32 calls complete with matching payloads even
  // though ~5% of transmissions drop and ~10% see extra queueing delay.
  chaos_run();
}

TEST(Pipeline, ChaosRunsAreSeedDeterministic) {
  EXPECT_EQ(chaos_run(), chaos_run());
}

TEST(Pipeline, WindowedThroughputBeatsSerialByFourTimes) {
  // The acceptance bar: window=16 over Direct-WriteIMM at 64B with a 1us
  // handler must finish the same call count >= 4x faster in virtual time,
  // with fewer doorbells per call (batch-drained CQs + coalesced posts).
  struct Out {
    sim::Duration elapsed{};
    double doorbells_per_call = 0;
  };
  auto run = [](uint32_t window) {
    Bed bed;
    ChannelConfig cfg;
    cfg.with_poll(PollMode::kBusy).with_max_msg(4096).with_window(window);
    proto::Handler handler = [&bed](View req) -> Task<Buffer> {
      co_await bed.sv->cpu().compute(1us);
      co_return Buffer(req.begin(), req.end());
    };
    auto ch = proto::make_channel(ProtocolKind::kDirectWriteImm, *bed.cl,
                                  *bed.sv, handler, cfg);
    constexpr int kCalls = 64;
    sim::WaitGroup wg(bed.sim);
    wg.add(window);
    for (uint32_t l = 0; l < window; ++l) {
      bed.sim.spawn([](Bed& bed, proto::RpcChannel& ch, int iters,
                       sim::WaitGroup& wg) -> Task<void> {
        Buffer payload(64, std::byte{0x5a});
        for (int i = 0; i < iters; ++i)
          (co_await ch.call(payload, 64)).value();
        wg.done();
      }(bed, *ch, kCalls / int(window), wg));
    }
    Out out;
    bed.sim.spawn([](Bed& bed, sim::WaitGroup& wg, proto::RpcChannel& ch,
                     Out& out) -> Task<void> {
      co_await wg.wait();
      out.elapsed = bed.sim.now();
      ch.shutdown();
    }(bed, wg, *ch, out));
    bed.sim.run();
    uint64_t dbs = bed.cl->counters().get(obs::Ctr::kDoorbells) +
                   bed.sv->counters().get(obs::Ctr::kDoorbells);
    out.doorbells_per_call = double(dbs) / kCalls;
    return out;
  };
  Out serial = run(1);
  Out windowed = run(16);
  EXPECT_GE(serial.elapsed.count(), 4 * windowed.elapsed.count())
      << "serial " << serial.elapsed.count() << "ns vs windowed "
      << windowed.elapsed.count() << "ns";
  EXPECT_LT(windowed.doorbells_per_call, serial.doorbells_per_call);
}

TEST(Pipeline, ServerSrqFeedsWindowedChannels) {
  // TServerRdma with an SRQ: the accepted WriteIMM channel drains the
  // shared pool instead of per-connection recv rings, and keeps it
  // replenished (posts grow past the initial depth).
  Bed bed;
  thrift::TServerRdma server(*bed.sv, echo_handler(),
                             thrift::TServerRdma::Options{.srq_depth = 32});
  ASSERT_NE(server.srq(), nullptr);
  EXPECT_EQ(bed.sv->counters().get(obs::Ctr::kSrqPosts), 32u);
  ChannelConfig cfg;
  cfg.with_poll(PollMode::kBusy).with_max_msg(4 << 10).with_window(8);
  thrift::TRdmaEndPoint* ep =
      server.accept(*bed.cl, ProtocolKind::kDirectWriteImm, cfg);
  drive_echo(bed, ep->channel(), 8, 4);
  server.stop();
  bed.sim.run();
  // Initial depth + one repost per consumed request.
  EXPECT_GT(bed.sv->counters().get(obs::Ctr::kSrqPosts), 32u);
}

}  // namespace
}  // namespace hatrpc
