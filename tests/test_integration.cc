// Cross-stack integration & figure-shape regression tests: the key
// qualitative results the benchmarks report, pinned at reduced scale so
// regressions in the cost model or protocol engine fail fast here:
//   * busy polling collapses under over-subscription (Fig 5);
//   * the hint-selected plan tracks the best baseline (Figs 11/12);
//   * function-level isolation keeps a latency RPC fast next to bulk
//     traffic (Figs 13/14);
//   * full determinism of a multi-client end-to-end scenario.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "hint/selection.h"

namespace hatrpc {
namespace {

using sim::PollMode;
using sim::Simulator;
using sim::Task;
using namespace std::chrono_literals;

proto::Handler work_handler(verbs::Node& server) {
  return [&server](proto::View req) -> Task<proto::Buffer> {
    co_await server.cpu().compute(1us +
                                  sim::transfer_time(req.size(), 20.0));
    co_return proto::Buffer(req.begin(), req.end());
  };
}

struct ThroughputRun {
  double mops;
  uint64_t events;
};

ThroughputRun run_many_clients(proto::ProtocolKind kind, size_t bytes,
                               int clients, PollMode poll) {
  Simulator sim;
  verbs::Fabric fabric(sim);
  verbs::Node* server = fabric.add_node();
  std::vector<verbs::Node*> cnodes;
  for (int i = 0; i < 9; ++i) cnodes.push_back(fabric.add_node());
  proto::ChannelConfig cfg;
  cfg.client_poll = poll;
  cfg.server_poll = poll;
  cfg.max_msg = std::max<uint32_t>(64 << 10, uint32_t(bytes) * 2);
  std::vector<std::unique_ptr<proto::RpcChannel>> chans;
  sim::WaitGroup wg(sim);
  wg.add(size_t(clients));
  for (int c = 0; c < clients; ++c) {
    chans.push_back(proto::make_channel(kind, *cnodes[size_t(c) % 9],
                                        *server, work_handler(*server),
                                        cfg));
    sim.spawn([](proto::RpcChannel& ch, size_t bytes,
                 sim::WaitGroup& wg) -> Task<void> {
      proto::Buffer payload(bytes, std::byte{0x1});
      for (int i = 0; i < 12; ++i)
        (co_await ch.call(payload, uint32_t(bytes))).value();
      wg.done();
    }(*chans.back(), bytes, wg));
  }
  sim::Time end{};
  sim.spawn([](Simulator& sim, sim::WaitGroup& wg, sim::Time& end,
               std::vector<std::unique_ptr<proto::RpcChannel>>& chans)
                -> Task<void> {
    co_await wg.wait();
    end = sim.now();
    for (auto& ch : chans) ch->shutdown();
  }(sim, wg, end, chans));
  sim.run();
  double secs = sim::to_seconds(end);
  return {double(clients) * 12 / secs / 1e6, sim.events_processed()};
}

TEST(FigureShapes, BusyPollingCollapsesUnderOversubscription) {
  // Fig 5 @512B: at 128 clients event polling must clearly beat busy
  // polling; at 8 clients busy must win.
  ThroughputRun busy_s = run_many_clients(
      proto::ProtocolKind::kDirectWriteImm, 512, 8, PollMode::kBusy);
  ThroughputRun event_s = run_many_clients(
      proto::ProtocolKind::kDirectWriteImm, 512, 8, PollMode::kEvent);
  EXPECT_GT(busy_s.mops, event_s.mops);
  ThroughputRun busy_l = run_many_clients(
      proto::ProtocolKind::kDirectWriteImm, 512, 128, PollMode::kBusy);
  ThroughputRun event_l = run_many_clients(
      proto::ProtocolKind::kDirectWriteImm, 512, 128, PollMode::kEvent);
  EXPECT_GT(event_l.mops, busy_l.mops * 1.5);
}

TEST(FigureShapes, HintSelectedPlanTracksBestBaseline) {
  // Figs 11/12: the plan the Figure-6 map derives must be within 3% of the
  // best fixed baseline at sampled (payload, clients) points.
  const proto::ProtocolKind baselines[] = {
      proto::ProtocolKind::kHybridEagerRndv,
      proto::ProtocolKind::kDirectWriteSend,
      proto::ProtocolKind::kRfp,
      proto::ProtocolKind::kDirectWriteImm,
  };
  for (auto [bytes, clients] : {std::pair<size_t, int>{512, 8},
                                {512, 96},
                                {131072, 8}}) {
    hint::Plan plan = hint::select_plan_raw(
        hint::PerfGoal::kThroughput, uint32_t(clients), uint32_t(bytes),
        false, hint::SelectionParams{});
    double hat =
        run_many_clients(plan.protocol, bytes, clients, plan.client_poll)
            .mops;
    for (auto kind : baselines) {
      double base =
          run_many_clients(kind, bytes, clients, PollMode::kBusy).mops;
      EXPECT_GE(hat, base * 0.97)
          << bytes << "B x" << clients << " vs " << proto::to_string(kind);
    }
  }
}

TEST(FigureShapes, FunctionIsolationProtectsLatencyRpc) {
  // Figs 13/14 mechanism: with per-function plans, a latency RPC running
  // beside bulk 128KB traffic on the same connection stays close to its
  // unloaded latency (its own busy-polled channel), while pushing both
  // through one event-polled bulk plan inflates it.
  auto run_mix = [](bool isolated) {
    Simulator sim;
    verbs::Fabric fabric(sim);
    verbs::Node* server = fabric.add_node();
    verbs::Node* cnode = fabric.add_node();
    proto::ChannelConfig lat_cfg;
    lat_cfg.client_poll = PollMode::kBusy;
    lat_cfg.server_poll = PollMode::kBusy;
    proto::ChannelConfig bulk_cfg;
    bulk_cfg.client_poll = PollMode::kEvent;
    bulk_cfg.server_poll = PollMode::kEvent;
    bulk_cfg.max_msg = 512 << 10;
    auto bulk = proto::make_channel(proto::ProtocolKind::kDirectWriteImm,
                                    *cnode, *server, work_handler(*server),
                                    bulk_cfg);
    auto lat = isolated
                   ? proto::make_channel(proto::ProtocolKind::kDirectWriteImm,
                                         *cnode, *server,
                                         work_handler(*server), lat_cfg)
                   : nullptr;
    sim::Duration lat_total{};
    int lat_calls = 0;
    bool bulk_done = false;
    sim.spawn([](proto::RpcChannel& ch, bool& done) -> Task<void> {
      proto::Buffer big(128 << 10, std::byte{0x2});
      for (int i = 0; i < 20; ++i) (co_await ch.call(big, 128 << 10)).value();
      done = true;
    }(*bulk, bulk_done));
    sim.spawn([](Simulator& sim, proto::RpcChannel& ch,
                 sim::Duration& total, int& calls,
                 bool& bulk_done) -> Task<void> {
      proto::Buffer small(256, std::byte{0x3});
      while (!bulk_done) {
        sim::Time t0 = sim.now();
        (co_await ch.call(small, 256)).value();
        total += sim.now() - t0;
        ++calls;
      }
    }(sim, isolated ? *lat : *bulk, lat_total, lat_calls, bulk_done));
    sim.spawn([](Simulator& sim, bool& bulk_done, proto::RpcChannel* a,
                 proto::RpcChannel* b) -> Task<void> {
      while (!bulk_done) co_await sim.sleep(50us);
      a->shutdown();
      if (b) b->shutdown();
    }(sim, bulk_done, bulk.get(), lat.get()));
    sim.run();
    return lat_total / std::max(lat_calls, 1);
  };
  sim::Duration isolated = run_mix(true);
  sim::Duration shared = run_mix(false);
  EXPECT_LT(isolated, shared);
}

TEST(Integration, EndToEndScenarioIsDeterministic) {
  auto run_once = []() {
    Simulator sim;
    verbs::Fabric fabric(sim);
    verbs::Node* sn = fabric.add_node();
    hint::ServiceHints h;
    h.function("Work").add(hint::Side::kShared, hint::Key::kPayloadSize,
                           hint::parse_value(hint::Key::kPayloadSize,
                                             "2048"));
    core::HatServer server(*sn, h, {});
    server.dispatcher().register_method(
        "Work", [sn](core::View req) -> Task<core::Buffer> {
          co_await sn->cpu().compute(700ns);
          co_return core::Buffer(req.begin(), req.end());
        });
    std::vector<std::unique_ptr<core::HatConnection>> conns;
    sim::WaitGroup wg(sim);
    wg.add(12);
    for (int c = 0; c < 12; ++c) {
      conns.push_back(
          std::make_unique<core::HatConnection>(*fabric.add_node(), server));
      sim.spawn([](core::HatConnection& conn, sim::WaitGroup& wg)
                    -> Task<void> {
        core::Buffer payload(2048, std::byte{0x6});
        for (int i = 0; i < 10; ++i) co_await conn.call("Work", payload);
        wg.done();
      }(*conns.back(), wg));
    }
    sim::Time end{};
    sim.spawn([](Simulator& sim, sim::WaitGroup& wg, sim::Time& end,
                 core::HatServer& server) -> Task<void> {
      co_await wg.wait();
      end = sim.now();
      server.stop();
    }(sim, wg, end, server));
    sim.run();
    return std::pair(end, sim.events_processed());
  };
  auto [t1, e1] = run_once();
  auto [t2, e2] = run_once();
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(e1, e2);
  EXPECT_GT(e1, 1000u);
}

}  // namespace
}  // namespace hatrpc
