// Adaptive hints (ROADMAP item 4): the runtime controller that re-selects
// protocol, polling, and window from live counters. Covers the controller's
// hysteresis dead band and cooldown (no flapping at the 4 KB boundary), the
// epoch-swap protocol (in-flight windowed calls drain on the old plan, all
// succeed), live window resizing as a concurrency bound, the leased
// receive path (in-place delivery + slot repost), live in-flight
// kLeastLoaded steering, and the determinism oracle: a frozen controller
// drives its channel bit-identically to the static twin it wraps.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "hint/adaptive.h"
#include "hint/selection.h"
#include "proto/channel.h"
#include "sim/sync.h"
#include "thrift/rdma.h"
#include "verbs/verbs.h"

namespace hatrpc::hint {
namespace {

using proto::Buffer;
using proto::ChannelConfig;
using proto::Handler;
using proto::ProtocolKind;
using proto::View;
using sim::PollMode;
using sim::Simulator;
using sim::Task;
using namespace std::chrono_literals;

Handler echo_handler(verbs::Node& server) {
  return [&server](View req) -> Task<Buffer> {
    co_await server.cpu().compute(200ns);
    co_return Buffer(req.begin(), req.end());
  };
}

/// A small-message eager prior, the static plan most tests start from.
Plan eager_prior(uint32_t payload = 512) {
  Plan p;
  p.protocol = ProtocolKind::kEagerSendRecv;
  p.client_poll = PollMode::kBusy;
  p.server_poll = PollMode::kBusy;
  p.expected_payload = payload;
  return p;
}

/// Controller params tuned for tests: decide quickly, no cooldown unless
/// the test sets one.
AdaptiveParams fast_params() {
  AdaptiveParams p;
  p.alpha = 0.5;
  p.min_samples = 2;
  p.cooldown = 0us;
  return p;
}

obs::CallSample sample(uint64_t bytes, uint32_t inflight = 1,
                       bool stalled = false) {
  return {bytes, bytes, stalled, inflight};
}

// ---------------------------------------------------------------------------
// AdaptiveController decision logic (no channel).
// ---------------------------------------------------------------------------

TEST(AdaptiveController, HysteresisDeadBandHoldsThePlanAtTheBoundary) {
  Simulator sim;
  AdaptiveParams p = fast_params();
  p.hysteresis = 0.25;  // dead band: 3072..5120 around the 4 KB switch
  AdaptiveController ctrl(sim, eager_prior(), p);

  // Payloads wandering WITHIN the band never flip the latched regime.
  for (uint64_t b : {4000u, 4300u, 3900u, 4500u, 3800u, 5000u, 3200u}) {
    ctrl.observe(sample(b));
    EXPECT_EQ(ctrl.maybe_replan(), std::nullopt) << b;
  }
  EXPECT_FALSE(ctrl.payload_large());
  EXPECT_EQ(ctrl.switches(), 0u);

  // Leaving the band on the far side flips it exactly once.
  std::optional<Plan> adopted;
  for (int i = 0; i < 8 && !adopted; ++i) {
    ctrl.observe(sample(64 << 10));
    adopted = ctrl.maybe_replan();
  }
  ASSERT_TRUE(adopted.has_value());
  EXPECT_TRUE(ctrl.payload_large());
  EXPECT_EQ(adopted->protocol, ProtocolKind::kWriteRndv);
  EXPECT_EQ(ctrl.switches(), 1u);
}

TEST(AdaptiveController, CooldownBoundsSwitchesUnderOscillation) {
  Simulator sim;
  AdaptiveParams p = fast_params();
  p.cooldown = std::chrono::milliseconds(10);
  AdaptiveController ctrl(sim, eager_prior(), p);

  // A workload oscillating hard across the 4 KB switch every few calls
  // would re-plan every interval without the cooldown; with it, at most
  // one adoption per cooldown period.
  uint64_t flips = 0;
  for (int round = 0; round < 40; ++round) {
    const uint64_t bytes = (round % 2) ? (64u << 10) : 64u;
    for (int i = 0; i < 4; ++i) ctrl.observe(sample(bytes));
    if (ctrl.maybe_replan()) ++flips;
    sim.run_until(sim.now() + std::chrono::microseconds(100));
  }
  // 40 rounds * 100us = 4ms of virtual time < one 10ms cooldown: after the
  // first adoption the controller must hold still.
  EXPECT_EQ(flips, 1u);
  EXPECT_EQ(ctrl.switches(), 1u);
}

TEST(AdaptiveController, PollingFollowsObservedConcurrency) {
  Simulator sim;
  AdaptiveParams p = fast_params();
  AdaptiveController ctrl(sim, eager_prior(), p);
  EXPECT_EQ(ctrl.subscription(), Subscription::kUnder);

  // Observed concurrency far over the 28-core budget: both sides drop to
  // event polling.
  std::optional<Plan> adopted;
  for (int i = 0; i < 16 && !adopted; ++i) {
    ctrl.observe(sample(512, /*inflight=*/160));
    adopted = ctrl.maybe_replan();
  }
  ASSERT_TRUE(adopted.has_value());
  EXPECT_EQ(ctrl.subscription(), Subscription::kOver);
  EXPECT_EQ(adopted->client_poll, PollMode::kEvent);
  EXPECT_EQ(adopted->server_poll, PollMode::kEvent);

  // Back under 16: busy polling returns.
  adopted.reset();
  for (int i = 0; i < 32 && !adopted; ++i) {
    ctrl.observe(sample(512, /*inflight=*/1));
    adopted = ctrl.maybe_replan();
  }
  ASSERT_TRUE(adopted.has_value());
  EXPECT_EQ(adopted->client_poll, PollMode::kBusy);
}

TEST(AdaptiveController, WindowGrowsOnStallsAndShrinksWhenIdle) {
  Simulator sim;
  AdaptiveParams p = fast_params();
  Plan prior = eager_prior();
  prior.window = 4;
  AdaptiveController ctrl(sim, prior, p);

  // Every call stalled on a full window: the window doubles.
  std::optional<Plan> adopted;
  for (int i = 0; i < 4 && !adopted; ++i) {
    ctrl.observe(sample(512, 8, /*stalled=*/true));
    adopted = ctrl.maybe_replan();
  }
  ASSERT_TRUE(adopted.has_value());
  EXPECT_EQ(adopted->window, 8u);

  // No stalls and in-flight well under half the window: it halves.
  adopted.reset();
  for (int i = 0; i < 64 && !adopted; ++i) {
    ctrl.observe(sample(512, 1, false));
    adopted = ctrl.maybe_replan();
  }
  ASSERT_TRUE(adopted.has_value());
  EXPECT_LT(adopted->window, 8u);
}

TEST(AdaptiveController, FrozenControllerNeverAdopts) {
  Simulator sim;
  AdaptiveController ctrl(sim, eager_prior(), fast_params());
  ctrl.freeze();
  for (int i = 0; i < 32; ++i) {
    ctrl.observe(sample(256 << 10, 200, true));
    EXPECT_EQ(ctrl.maybe_replan(), std::nullopt);
  }
  EXPECT_EQ(ctrl.switches(), 0u);
  // Observation still works frozen (the ablation observes, never acts).
  EXPECT_GT(ctrl.footprint().payload_ewma(), 0.0);
}

// ---------------------------------------------------------------------------
// AdaptiveChannel: live reconfigure and epoch swaps.
// ---------------------------------------------------------------------------

TEST(AdaptiveChannel, PayloadShiftSwapsEpochToRendezvousAndAllCallsSucceed) {
  Simulator sim;
  verbs::Fabric fabric(sim);
  verbs::Node* cl = fabric.add_node();
  verbs::Node* sv = fabric.add_node();
  ChannelConfig cfg = ChannelConfig{}.with_window(4);
  auto ch = make_adaptive_channel(*cl, *sv, echo_handler(*sv), cfg,
                                  eager_prior(), fast_params());
  int failures = 0;
  sim::WaitGroup wg(sim);
  // Four lanes so the swap happens with calls in flight on the old epoch.
  for (int t = 0; t < 4; ++t) {
    wg.add();
    sim.spawn([](AdaptiveChannel& ch, int t, int& failures,
                 sim::WaitGroup& wg) -> Task<void> {
      for (int i = 0; i < 24; ++i) {
        // Phase shift at i==8: small -> large payloads.
        const size_t bytes = i < 8 ? 512 : (32u << 10) + 128 * t;
        Buffer req(bytes, std::byte(0x5a + t));
        auto r = co_await ch.call(req, uint32_t(bytes));
        if (!r || *r != req) ++failures;
      }
      wg.done();
    }(*ch, t, failures, wg));
  }
  sim.spawn([](sim::WaitGroup& wg, AdaptiveChannel& ch) -> Task<void> {
    co_await wg.wait();
    ch.shutdown();
  }(wg, *ch));
  sim.run();

  EXPECT_EQ(failures, 0);
  EXPECT_GE(ch->epoch(), 1u) << "payload shift should have rebuilt";
  EXPECT_EQ(ch->kind(), ProtocolKind::kWriteRndv);
  EXPECT_GE(cl->counters().get(obs::Ctr::kEpochSwaps), 1u);
  EXPECT_GE(cl->counters().get(obs::Ctr::kPlanSwitches), 1u);
}

TEST(AdaptiveChannel, ResizeWindowBoundsConcurrencyWithoutRebuilding) {
  Simulator sim;
  verbs::Fabric fabric(sim);
  verbs::Node* cl = fabric.add_node();
  verbs::Node* sv = fabric.add_node();
  ChannelConfig cfg = ChannelConfig{}.with_window(8);
  int live = 0, peak = 0;
  Handler gauge = [&](View req) -> Task<Buffer> {
    ++live;
    if (live > peak) peak = live;
    co_await sv->cpu().compute(2us);
    --live;
    co_return Buffer(req.begin(), req.end());
  };
  auto ch = proto::make_channel(ProtocolKind::kEagerSendRecv, *cl, *sv,
                                gauge, cfg);
  EXPECT_FALSE(ch->resize_window(16)) << "beyond allocation needs a rebuild";
  EXPECT_TRUE(ch->resize_window(2));
  sim::WaitGroup wg(sim);
  for (int t = 0; t < 8; ++t) {
    wg.add();
    sim.spawn([](proto::RpcChannel& ch, sim::WaitGroup& wg) -> Task<void> {
      Buffer req(256, std::byte{0x11});
      for (int i = 0; i < 4; ++i) (co_await ch.call(req, 256)).value();
      wg.done();
    }(*ch, wg));
  }
  sim.spawn([](sim::WaitGroup& wg, proto::RpcChannel& ch) -> Task<void> {
    co_await wg.wait();
    ch.shutdown();
  }(wg, *ch));
  sim.run();
  EXPECT_LE(peak, 2) << "shrunk window must bound in-flight calls";

  // Re-grow within the allocation: the withheld slots come back.
  EXPECT_TRUE(ch->resize_window(8));
}

// ---------------------------------------------------------------------------
// Determinism oracle: frozen adaptive == static twin, bit for bit.
// ---------------------------------------------------------------------------

struct RunResult {
  std::string dump;
  sim::Time end{};
};

template <class MakeChannel>
RunResult run_phased(MakeChannel make) {
  Simulator sim;
  verbs::Fabric fabric(sim);
  verbs::Node* cl = fabric.add_node();
  verbs::Node* sv = fabric.add_node();
  auto ch = make(sim, *cl, *sv);
  sim.spawn([](proto::RpcChannel& ch) -> Task<void> {
    for (int i = 0; i < 48; ++i) {
      const size_t bytes = (i / 8) % 2 ? 24000 : 512;  // phase shifts
      Buffer req(bytes, std::byte{0x3c});
      auto r = co_await ch.call(req, uint32_t(bytes));
      r.value();
    }
    ch.shutdown();
  }(*ch));
  sim.run();
  return {fabric.obs().counters.dump(), sim.now()};
}

TEST(AdaptiveChannel, FrozenRunIsBitIdenticalToTheStaticTwin) {
  ChannelConfig cfg = ChannelConfig{}.with_window(4);
  Plan prior = eager_prior();
  RunResult fixed = run_phased(
      [&](Simulator&, verbs::Node& cl, verbs::Node& sv) {
        return proto::make_channel(prior.protocol, cl, sv, echo_handler(sv),
                                   cfg);
      });
  RunResult frozen = run_phased(
      [&](Simulator&, verbs::Node& cl, verbs::Node& sv) {
        auto ch = make_adaptive_channel(cl, sv, echo_handler(sv), cfg, prior,
                                        fast_params());
        ch->freeze();
        return ch;
      });
  RunResult live = run_phased(
      [&](Simulator&, verbs::Node& cl, verbs::Node& sv) {
        return make_adaptive_channel(cl, sv, echo_handler(sv), cfg, prior,
                                     fast_params());
      });
  EXPECT_EQ(frozen.dump, fixed.dump);
  EXPECT_EQ(frozen.end, fixed.end);
  // Sanity: the UNfrozen controller actually diverges on this workload.
  EXPECT_NE(live.dump, fixed.dump);
}

// ---------------------------------------------------------------------------
// Leased receive path (fig05 satellite).
// ---------------------------------------------------------------------------

TEST(LeasedReceive, InPlaceDeliverySkipsTheClientCopyAndRepostsTheSlot) {
  Simulator sim;
  verbs::Fabric fabric(sim);
  verbs::Node* cl = fabric.add_node();
  verbs::Node* sv = fabric.add_node();
  ChannelConfig cfg = ChannelConfig{}.with_zero_copy();
  auto ch = proto::make_channel(ProtocolKind::kEagerSendRecv, *cl, *sv,
                                echo_handler(*sv), cfg);
  uint64_t copy_after_warmup = 0;
  sim.spawn([](verbs::Fabric& fabric, proto::RpcChannel& ch,
               uint64_t& copy_after) -> Task<void> {
    Buffer req(1024, std::byte{0x77});
    // Many more calls than the ring has slots: leases must repost.
    for (int i = 0; i < 64; ++i) {
      auto r = co_await ch.call_leased(req, 1024);
      proto::LeasedReply reply = std::move(*r);
      EXPECT_TRUE(reply.in_place());
      EXPECT_EQ(reply.bytes().size(), req.size());
      if (reply.bytes().size() == req.size()) {
        EXPECT_TRUE(
            std::equal(req.begin(), req.end(), reply.bytes().begin()));
      }
      if (i == 0)
        copy_after = fabric.node(0)->counters().get(obs::Ctr::kCopyBytes);
      reply.release();
    }
    // No client-side materialization copies after warm-up.
    EXPECT_EQ(fabric.node(0)->counters().get(obs::Ctr::kCopyBytes),
              copy_after);
    EXPECT_EQ(fabric.node(0)->counters().get(obs::Ctr::kRecvLeases), 64u);
    ch.shutdown();
  }(fabric, *ch, copy_after_warmup));
  sim.run();
}

TEST(LeasedReceive, WindowedLeasesRouteAndFallBackWhenRingIsTight) {
  Simulator sim;
  verbs::Fabric fabric(sim);
  verbs::Node* cl = fabric.add_node();
  verbs::Node* sv = fabric.add_node();
  // window 4 of a 16-slot ring: leased delivery allowed (4*2 <= 16).
  ChannelConfig cfg = ChannelConfig{}.with_window(4).with_zero_copy();
  auto ch = proto::make_channel(ProtocolKind::kEagerSendRecv, *cl, *sv,
                                echo_handler(*sv), cfg);
  int failures = 0;
  sim::WaitGroup wg(sim);
  for (int t = 0; t < 4; ++t) {
    wg.add();
    sim.spawn([](proto::RpcChannel& ch, int t, int& failures,
                 sim::WaitGroup& wg) -> Task<void> {
      for (int i = 0; i < 16; ++i) {
        Buffer req(700 + 64 * t, std::byte(0x42 + t));
        auto r = co_await ch.call_leased(req, uint32_t(req.size()));
        if (!r) {
          ++failures;
        } else {
          proto::LeasedReply reply = std::move(*r);
          View got = reply.bytes();
          if (got.size() != req.size() ||
              !std::equal(req.begin(), req.end(), got.begin()))
            ++failures;
        }
      }
      wg.done();
    }(*ch, t, failures, wg));
  }
  sim.spawn([](sim::WaitGroup& wg, proto::RpcChannel& ch) -> Task<void> {
    co_await wg.wait();
    ch.shutdown();
  }(wg, *ch));
  sim.run();
  EXPECT_EQ(failures, 0);
  EXPECT_GT(cl->counters().get(obs::Ctr::kRecvLeases), 0u);

  // A window as deep as the ring must NOT lease (deadlock guard): the
  // fallback still answers, owned.
  ChannelConfig deep = ChannelConfig{}.with_window(16).with_zero_copy();
  auto ch2 = proto::make_channel(ProtocolKind::kEagerSendRecv, *cl, *sv,
                                 echo_handler(*sv), deep);
  sim.spawn([](proto::RpcChannel& ch) -> Task<void> {
    Buffer req(256, std::byte{0x01});
    auto r = co_await ch.call_leased(req, 256);
    EXPECT_FALSE(r->in_place());
    ch.shutdown();
  }(*ch2));
  sim.run();
}

// ---------------------------------------------------------------------------
// Live in-flight steering (kLeastLoaded satellite).
// ---------------------------------------------------------------------------

TEST(LeastLoaded, SteersAwayFromBusyShardsAndRecoversAfterDrain) {
  Simulator sim;
  verbs::Fabric fabric(sim);
  verbs::Node* sv = fabric.add_node();
  std::vector<verbs::Node*> clients;
  for (int i = 0; i < 4; ++i) clients.push_back(fabric.add_node());

  thrift::TServerRdma::Options opts;
  opts.shards = 2;
  opts.steering = thrift::Steering::kLeastLoaded;
  thrift::TServerRdma server(*sv, echo_handler(*sv), opts);

  ChannelConfig cfg;
  // Two idle accepts fill the shards evenly (secondary key).
  auto* ep0 = server.accept(*clients[0], ProtocolKind::kEagerSendRecv, cfg);
  server.accept(*clients[1], ProtocolKind::kEagerSendRecv, cfg);
  EXPECT_EQ(server.shard(0).endpoints.size(), 1u);
  EXPECT_EQ(server.shard(1).endpoints.size(), 1u);

  sim.spawn([](Simulator& sim, thrift::TServerRdma& server,
               thrift::TRdmaEndPoint* ep0, verbs::Node* c2,
               verbs::Node* c3) -> Task<void> {
    // A call in flight on shard 0: the next accept must avoid it even
    // though both shards hold one connection.
    sim::Event started(sim);
    sim.spawn([](thrift::TRdmaEndPoint* ep, sim::Event started)
                  -> Task<void> {
      started.set();
      Buffer req(600000, std::byte{0x10});  // long: segmented + handler
      (co_await ep->channel().call(req, 600000)).value();
    }(ep0, started));
    co_await started.wait();
    co_await sim.sleep(1us);  // let the call enter the channel
    auto* ep2 = server.accept(*c2, ProtocolKind::kEagerSendRecv, {});
    EXPECT_EQ(server.shard(1).endpoints.size(), 2u)
        << "burst steering must rank by live in-flight, not accepts";
    // Drain, then the next accept goes by connection count again: shard 0
    // (1 conn) beats shard 1 (2 conns) once its in-flight gauge is back
    // to zero — a stale post-burst ranking would keep avoiding shard 0.
    co_await sim.sleep(std::chrono::milliseconds(50));
    EXPECT_EQ(server.shard(0).inflight, 0u);
    auto* ep3 = server.accept(*c3, ProtocolKind::kEagerSendRecv, {});
    EXPECT_EQ(server.shard(0).endpoints.size(), 2u);
    (void)ep2;
    (void)ep3;
    server.stop();
  }(sim, server, ep0, clients[2], clients[3]));
  sim.run();
}

// ---------------------------------------------------------------------------
// PlanCache invalidation (thrift plumbing).
// ---------------------------------------------------------------------------

TEST(PlanCache, EpochBumpsOnlyWhenThePlanChanges) {
  thrift::PlanCache cache;
  Plan a = eager_prior();
  EXPECT_EQ(cache.publish("get", a), 1u);
  EXPECT_EQ(cache.publish("get", a), 1u) << "idempotent republish";
  EXPECT_TRUE(cache.fresh("get", 1));
  Plan b = a;
  b.protocol = ProtocolKind::kWriteRndv;
  EXPECT_EQ(cache.publish("get", b), 2u);
  EXPECT_FALSE(cache.fresh("get", 1)) << "stale snapshots must invalidate";
  auto s = cache.resolve("get");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->plan.protocol, ProtocolKind::kWriteRndv);
  EXPECT_FALSE(cache.resolve("missing").has_value());
}

TEST(PlanCache, AdaptiveAcceptPublishesAndRefreshInvalidatesClients) {
  Simulator sim;
  verbs::Fabric fabric(sim);
  verbs::Node* sv = fabric.add_node();
  verbs::Node* cl = fabric.add_node();
  thrift::TServerRdma server(*sv, echo_handler(*sv));
  thrift::PlanCache cache;

  AdaptiveParams params = fast_params();
  auto* ep = server.accept_adaptive(*cl, eager_prior(),
                                    ChannelConfig{}.with_window(2), params,
                                    &cache, "get");
  ASSERT_TRUE(cache.resolve("get").has_value());
  const uint64_t epoch0 = cache.resolve("get")->epoch;

  thrift::TRdma transport(*ep);
  transport.bind_plan(cache, "get");
  sim.spawn([](Simulator& sim, thrift::TServerRdma& server,
               thrift::TRdma& transport, thrift::PlanCache& cache,
               thrift::TRdmaEndPoint* ep, uint64_t epoch0) -> Task<void> {
    // First flush resolves the published prior.
    transport.write(Buffer(512, std::byte{0x2a}));
    co_await transport.flush();
    EXPECT_EQ(transport.plan_refreshes(), 1u);

    // Drive the controller across the 4 KB switch, then republish.
    for (int i = 0; i < 12; ++i) {
      transport.write(Buffer(32 << 10, std::byte{0x2b}));
      co_await transport.flush();
    }
    EXPECT_TRUE(thrift::TServerRdma::refresh_plan(cache, "get", *ep))
        << "controller re-selection must republish";
    EXPECT_GT(cache.resolve("get")->epoch, epoch0);

    // The stale client snapshot re-resolves on its next flush.
    transport.write(Buffer(512, std::byte{0x2c}));
    co_await transport.flush();
    EXPECT_EQ(transport.plan_refreshes(), 2u);
    server.stop();
  }(sim, server, transport, cache, ep, epoch0));
  sim.run();
}

}  // namespace
}  // namespace hatrpc::hint
