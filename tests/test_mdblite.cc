// mdblite tests: B+-tree correctness under heavy insert/update/delete load
// (property-checked against std::map), copy-on-write snapshot isolation,
// dual-meta commit/abort semantics, reader-table limits, freelist
// reclamation, overflow values, and cursor iteration.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "kv/mdblite.h"
#include "sim/rng.h"

namespace hatrpc::kv {
namespace {

std::string key_of(int i) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "key%08d", i);
  return buf;
}

TEST(Mdblite, EmptyGetReturnsNothing) {
  Env env;
  Txn txn = env.begin(false);
  EXPECT_EQ(txn.get("nope"), std::nullopt);
  EXPECT_EQ(txn.entry_count(), 0u);
}

TEST(Mdblite, PutGetSingle) {
  Env env;
  {
    Txn txn = env.begin(true);
    txn.put("alpha", "one");
    EXPECT_EQ(txn.get("alpha"), "one");  // visible inside own txn
    txn.commit();
  }
  Txn r = env.begin(false);
  EXPECT_EQ(r.get("alpha"), "one");
  EXPECT_EQ(r.entry_count(), 1u);
}

TEST(Mdblite, OverwriteReplacesValue) {
  Env env;
  {
    Txn t = env.begin(true);
    t.put("k", "v1");
    t.put("k", "v2");
    t.commit();
  }
  Txn r = env.begin(false);
  EXPECT_EQ(r.get("k"), "v2");
  EXPECT_EQ(r.entry_count(), 1u);
}

TEST(Mdblite, AbortDiscardsChanges) {
  Env env;
  {
    Txn t = env.begin(true);
    t.put("committed", "yes");
    t.commit();
  }
  {
    Txn t = env.begin(true);
    t.put("aborted", "no");
    t.abort();
  }
  {
    Txn t = env.begin(true);  // RAII abort via destructor
    t.put("dropped", "no");
  }
  Txn r = env.begin(false);
  EXPECT_EQ(r.get("committed"), "yes");
  EXPECT_EQ(r.get("aborted"), std::nullopt);
  EXPECT_EQ(r.get("dropped"), std::nullopt);
  EXPECT_EQ(env.stats().aborts, 2u);
}

TEST(Mdblite, SnapshotIsolationAcrossCommit) {
  Env env;
  {
    Txn t = env.begin(true);
    t.put("x", "old");
    t.commit();
  }
  Txn reader = env.begin(false);  // pins the current snapshot
  {
    Txn w = env.begin(true);
    w.put("x", "new");
    w.put("y", "added");
    w.commit();
  }
  // The old reader still sees its snapshot...
  EXPECT_EQ(reader.get("x"), "old");
  EXPECT_EQ(reader.get("y"), std::nullopt);
  reader.commit();
  // ...while a fresh reader sees the new state.
  Txn fresh = env.begin(false);
  EXPECT_EQ(fresh.get("x"), "new");
  EXPECT_EQ(fresh.get("y"), "added");
}

TEST(Mdblite, SingleWriterEnforced) {
  Env env;
  Txn w1 = env.begin(true);
  EXPECT_THROW(env.begin(true), std::runtime_error);
  w1.abort();
  EXPECT_NO_THROW(env.begin(true));
}

TEST(Mdblite, ReaderTableLimitEnforced) {
  Env env(EnvOptions{.max_readers = 3});
  std::vector<Txn> readers;
  for (int i = 0; i < 3; ++i) readers.push_back(env.begin(false));
  EXPECT_EQ(env.active_readers(), 3u);
  EXPECT_THROW(env.begin(false), std::runtime_error);
  readers.pop_back();  // frees a slot
  EXPECT_NO_THROW(env.begin(false));
}

TEST(Mdblite, ManyInsertsSplitPages) {
  Env env;
  constexpr int kN = 5000;
  {
    Txn t = env.begin(true);
    for (int i = 0; i < kN; ++i) t.put(key_of(i), "value-" + key_of(i));
    t.commit();
  }
  EXPECT_GT(env.page_count(), 10u);  // tree actually grew multiple levels
  Txn r = env.begin(false);
  EXPECT_EQ(r.entry_count(), static_cast<size_t>(kN));
  for (int i = 0; i < kN; i += 97)
    EXPECT_EQ(r.get(key_of(i)), "value-" + key_of(i)) << i;
  EXPECT_EQ(r.get("key99999999"), std::nullopt);
}

TEST(Mdblite, DeleteRemovesAndRebalances) {
  Env env;
  constexpr int kN = 2000;
  {
    Txn t = env.begin(true);
    for (int i = 0; i < kN; ++i) t.put(key_of(i), std::string(100, 'v'));
    t.commit();
  }
  {
    Txn t = env.begin(true);
    for (int i = 0; i < kN; i += 2) EXPECT_TRUE(t.del(key_of(i)));
    EXPECT_FALSE(t.del("absent"));
    t.commit();
  }
  Txn r = env.begin(false);
  EXPECT_EQ(r.entry_count(), static_cast<size_t>(kN / 2));
  for (int i = 0; i < kN; ++i) {
    if (i % 2 == 0) EXPECT_EQ(r.get(key_of(i)), std::nullopt);
    else EXPECT_EQ(r.get(key_of(i)), std::string(100, 'v'));
  }
}

TEST(Mdblite, DeleteEverythingEmptiesTree) {
  Env env;
  {
    Txn t = env.begin(true);
    for (int i = 0; i < 500; ++i) t.put(key_of(i), "x");
    t.commit();
  }
  {
    Txn t = env.begin(true);
    for (int i = 0; i < 500; ++i) EXPECT_TRUE(t.del(key_of(i)));
    t.commit();
  }
  Txn r = env.begin(false);
  EXPECT_EQ(r.entry_count(), 0u);
  EXPECT_EQ(r.get(key_of(0)), std::nullopt);
  // After all readers drain, shadowed pages become reusable.
  r.commit();
  Txn w = env.begin(true);
  w.put("fresh", "start");
  w.commit();
  EXPECT_GT(env.stats().reclaimed, 0u);
}

TEST(Mdblite, OverflowValuesRoundTrip) {
  Env env;
  std::string big(20000, 'B');  // far beyond a 4 KB page
  std::string medium(1500, 'M');
  {
    Txn t = env.begin(true);
    t.put("big", big);
    t.put("medium", medium);
    t.put("small", "s");
    t.commit();
  }
  Txn r = env.begin(false);
  EXPECT_EQ(r.get("big"), big);
  EXPECT_EQ(r.get("medium"), medium);
  EXPECT_EQ(r.get("small"), "s");
}

TEST(Mdblite, OverflowValueReplacedFreesOldPage) {
  Env env;
  {
    Txn t = env.begin(true);
    t.put("k", std::string(8000, 'a'));
    t.commit();
  }
  size_t before = env.live_pages();
  {
    Txn t = env.begin(true);
    t.put("k", std::string(8000, 'b'));
    t.commit();
  }
  Txn r = env.begin(false);
  EXPECT_EQ(r.get("k"), std::string(8000, 'b'));
  r.commit();
  // COW steady-state: the replaced overflow page is recycled, not leaked.
  Txn w = env.begin(true);
  w.put("k2", "x");
  w.commit();
  EXPECT_LE(env.live_pages(), before + 4);
}

TEST(Mdblite, FreelistRespectsLiveReaders) {
  Env env;
  {
    Txn t = env.begin(true);
    for (int i = 0; i < 200; ++i) t.put(key_of(i), std::string(64, 'v'));
    t.commit();
  }
  Txn pinned = env.begin(false);  // pins the old snapshot
  size_t pages_before = env.page_count();
  for (int round = 0; round < 5; ++round) {
    Txn w = env.begin(true);
    for (int i = 0; i < 200; i += 10)
      w.put(key_of(i), std::string(64, 'a' + round));
    w.commit();
  }
  // COW copies could not be recycled while the reader is live...
  EXPECT_GT(env.page_count(), pages_before);
  EXPECT_EQ(pinned.get(key_of(0)), std::string(64, 'v'));
  pinned.commit();
  // ...but after it finishes, page growth stops (reuse kicks in).
  size_t settled = env.page_count();
  for (int round = 0; round < 5; ++round) {
    Txn w = env.begin(true);
    for (int i = 0; i < 200; i += 10)
      w.put(key_of(i), std::string(64, 'f' + round));
    w.commit();
  }
  EXPECT_EQ(env.page_count(), settled);
}

TEST(Mdblite, CursorIteratesInOrder) {
  Env env;
  {
    Txn t = env.begin(true);
    for (int i : {5, 1, 9, 3, 7, 2, 8, 4, 6, 0})
      t.put(key_of(i), "v" + std::to_string(i));
    t.commit();
  }
  Txn r = env.begin(false);
  Cursor c(r);
  ASSERT_TRUE(c.first());
  std::string prev;
  int count = 0;
  do {
    EXPECT_GT(c.key(), prev);
    prev = c.key();
    ++count;
  } while (c.next());
  EXPECT_EQ(count, 10);
}

TEST(Mdblite, CursorSeekFindsLowerBound) {
  Env env;
  {
    Txn t = env.begin(true);
    for (int i = 0; i < 100; i += 10) t.put(key_of(i), "x");
    t.commit();
  }
  Txn r = env.begin(false);
  Cursor c(r);
  ASSERT_TRUE(c.seek(key_of(35)));
  EXPECT_EQ(c.key(), key_of(40));  // >= semantics
  ASSERT_TRUE(c.seek(key_of(40)));
  EXPECT_EQ(c.key(), key_of(40));  // exact
  EXPECT_FALSE(c.seek(key_of(95)));  // past the end
}

TEST(Mdblite, CursorSpansLeafBoundaries) {
  Env env;
  constexpr int kN = 3000;
  {
    Txn t = env.begin(true);
    for (int i = 0; i < kN; ++i) t.put(key_of(i), "v");
    t.commit();
  }
  Txn r = env.begin(false);
  Cursor c(r);
  int count = 0;
  for (bool ok = c.first(); ok; ok = c.next()) ++count;
  EXPECT_EQ(count, kN);
}

TEST(MdbliteNamedDbs, IndependentTrees) {
  Env env;
  {
    Txn t = env.begin(true);
    t.put("users", "alice", "1");
    t.put("users", "bob", "2");
    t.put("orders", "alice", "order-9");  // same key, different tree
    t.put("plain-default", "d");
    t.commit();
  }
  Txn r = env.begin(false);
  EXPECT_EQ(r.get("users", "alice"), "1");
  EXPECT_EQ(r.get("orders", "alice"), "order-9");
  EXPECT_EQ(r.get("users", "zzz"), std::nullopt);
  EXPECT_EQ(r.get("plain-default"), "d");       // default DB untouched
  EXPECT_EQ(r.get("users"), std::nullopt);      // not a default-DB key
  EXPECT_EQ(r.entry_count("users"), 2u);
  EXPECT_EQ(r.entry_count("orders"), 1u);
  EXPECT_EQ(r.entry_count(), 1u);
}

TEST(MdbliteNamedDbs, AtomicCommitAcrossTrees) {
  Env env;
  {
    Txn t = env.begin(true);
    t.put("a", "k", "v1");
    t.put("b", "k", "v1");
    t.commit();
  }
  {
    Txn t = env.begin(true);
    t.put("a", "k", "v2");
    t.put("b", "k", "v2");
    t.abort();  // must roll back BOTH trees
  }
  Txn r = env.begin(false);
  EXPECT_EQ(r.get("a", "k"), "v1");
  EXPECT_EQ(r.get("b", "k"), "v1");
}

TEST(MdbliteNamedDbs, SnapshotIsolationPerTree) {
  Env env;
  {
    Txn t = env.begin(true);
    t.put("logs", "e1", "old");
    t.commit();
  }
  Txn pinned = env.begin(false);
  {
    Txn w = env.begin(true);
    w.put("logs", "e1", "new");
    w.put("logs", "e2", "added");
    w.commit();
  }
  EXPECT_EQ(pinned.get("logs", "e1"), "old");
  EXPECT_EQ(pinned.entry_count("logs"), 1u);
  pinned.commit();
  Txn fresh = env.begin(false);
  EXPECT_EQ(fresh.get("logs", "e2"), "added");
}

TEST(MdbliteNamedDbs, CursorOverNamedTree) {
  Env env;
  {
    Txn t = env.begin(true);
    for (int i = 0; i < 50; ++i) t.put("idx", key_of(i), "v");
    t.put(key_of(999), "default-entry");
    t.commit();
  }
  Txn r = env.begin(false);
  Cursor c(r, "idx");
  int count = 0;
  for (bool ok = c.first(); ok; ok = c.next()) ++count;
  EXPECT_EQ(count, 50);
  Cursor d(r);  // default tree has exactly one entry
  int dcount = 0;
  for (bool ok = d.first(); ok; ok = d.next()) ++dcount;
  EXPECT_EQ(dcount, 1);
  Cursor e(r, "never-created");
  EXPECT_FALSE(e.first());
}

TEST(MdbliteNamedDbs, DeleteInNamedTree) {
  Env env;
  {
    Txn t = env.begin(true);
    for (int i = 0; i < 100; ++i) t.put("t", key_of(i), "v");
    t.commit();
  }
  {
    Txn t = env.begin(true);
    for (int i = 0; i < 100; i += 2) EXPECT_TRUE(t.del("t", key_of(i)));
    EXPECT_FALSE(t.del("t", "absent"));
    EXPECT_FALSE(t.del("other", key_of(1)));  // tree does not exist
    t.commit();
  }
  Txn r = env.begin(false);
  EXPECT_EQ(r.entry_count("t"), 50u);
}

// Property test: a long random mixed workload must match std::map exactly.
class MdbliteRandomized : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MdbliteRandomized, MatchesReferenceModel) {
  sim::Rng rng(GetParam());
  Env env(EnvOptions{.page_size = 1024});  // small pages -> deep trees
  std::map<std::string, std::string> model;
  for (int round = 0; round < 40; ++round) {
    Txn t = env.begin(true);
    for (int op = 0; op < 100; ++op) {
      std::string key = key_of(static_cast<int>(rng.bounded(400)));
      double dice = rng.uniform01();
      if (dice < 0.55) {
        std::string value(rng.bounded(180) + 1,
                          static_cast<char>('a' + rng.bounded(26)));
        t.put(key, value);
        model[key] = value;
      } else if (dice < 0.8) {
        bool in_tree = t.del(key);
        bool in_model = model.erase(key) > 0;
        EXPECT_EQ(in_tree, in_model) << key;
      } else {
        auto got = t.get(key);
        auto want = model.find(key);
        if (want == model.end()) {
          EXPECT_EQ(got, std::nullopt) << key;
        } else {
          EXPECT_EQ(got, want->second) << key;
        }
      }
    }
    if (rng.chance(0.1)) {
      t.abort();
      // Rebuild the model from a fresh snapshot: abort rolled us back to
      // the last committed state, so re-apply nothing — instead re-read.
      Txn r = env.begin(false);
      std::map<std::string, std::string> rebuilt;
      Cursor c(r);
      for (bool ok = c.first(); ok; ok = c.next())
        rebuilt[c.key()] = c.value();
      model = std::move(rebuilt);
    } else {
      t.commit();
    }
    // Full-content check each round via cursor.
    Txn r = env.begin(false);
    EXPECT_EQ(r.entry_count(), model.size());
    Cursor c(r);
    auto it = model.begin();
    for (bool ok = c.first(); ok; ok = c.next(), ++it) {
      ASSERT_NE(it, model.end());
      EXPECT_EQ(c.key(), it->first);
      EXPECT_EQ(c.value(), it->second);
    }
    EXPECT_EQ(it, model.end());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MdbliteRandomized,
                         ::testing::Values(1, 2, 3, 42, 1337));

}  // namespace
}  // namespace hatrpc::kv
