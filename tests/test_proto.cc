// Tests for the RDMA protocol engine: functional round-trip correctness for
// every protocol across payload sizes (parameterized sweep), per-protocol
// verbs-operation footprints (doorbells, READ counts, chaining), latency
// orderings the paper's Fig. 4 analysis relies on, memory-registration
// accounting, and clean shutdown.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>

#include "proto/channel.h"
#include "proto/hybrid.h"

namespace hatrpc::proto {
namespace {

using sim::PollMode;
using sim::Simulator;
using sim::Task;
using namespace std::chrono_literals;

constexpr ProtocolKind kAllProtocols[] = {
    ProtocolKind::kEagerSendRecv,    ProtocolKind::kDirectWriteSend,
    ProtocolKind::kChainedWriteSend, ProtocolKind::kWriteRndv,
    ProtocolKind::kReadRndv,         ProtocolKind::kDirectWriteImm,
    ProtocolKind::kPilaf,            ProtocolKind::kFarm,
    ProtocolKind::kRfp,              ProtocolKind::kHerd,
    ProtocolKind::kHybridEagerRndv,  ProtocolKind::kArGrpc,
};

/// Echo handler that upper-cases the payload so tests prove bytes really
/// travelled through the server (and charges a small per-byte compute).
Handler make_upcase_handler(verbs::Node& server) {
  return [&server](View req) -> Task<Buffer> {
    co_await server.cpu().compute(200ns + sim::Duration(req.size() / 16));
    Buffer out(req.begin(), req.end());
    for (auto& b : out) {
      char c = static_cast<char>(b);
      if (c >= 'a' && c <= 'z') b = static_cast<std::byte>(c - 32);
    }
    co_return out;
  };
}

struct RpcResult {
  std::string response;
  sim::Time elapsed{};
  ChannelStats stats;
  size_t leaked_tasks = 0;
};

RpcResult run_rpc(ProtocolKind kind, const std::string& payload,
                  ChannelConfig cfg, int repeats = 1) {
  Simulator sim;
  verbs::Fabric fabric(sim);
  verbs::Node* client = fabric.add_node();
  verbs::Node* server = fabric.add_node();
  auto ch = make_channel(kind, *client, *server,
                         make_upcase_handler(*server), cfg);
  RpcResult result;
  sim.spawn([](Simulator& sim, RpcChannel& ch, const std::string& payload,
               int repeats, RpcResult& result) -> Task<void> {
    for (int i = 0; i < repeats; ++i) {
      Buffer resp = (co_await ch.call(
          to_buffer(payload), static_cast<uint32_t>(payload.size()))).value();
      result.response = as_string(resp);
    }
    result.elapsed = sim.now();
    ch.shutdown();
  }(sim, *ch, payload, repeats, result));
  sim.run();
  result.stats = ch->stats();
  result.leaked_tasks = sim.live_tasks();
  return result;
}

std::string payload_of(size_t n) {
  std::string s(n, 'x');
  for (size_t i = 0; i < n; ++i) s[i] = static_cast<char>('a' + i % 26);
  return s;
}

std::string upcased(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](char c) { return c >= 'a' && c <= 'z' ? c - 32 : c; });
  return s;
}

// ---------------------------------------------------------------------------
// Property sweep: every protocol echoes correctly for every payload size and
// both polling disciplines, and its server loop shuts down cleanly.
// ---------------------------------------------------------------------------
class ProtocolRoundTrip
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, size_t, int>> {
};

TEST_P(ProtocolRoundTrip, EchoesAcrossSizesAndPolling) {
  auto [kind, size, poll] = GetParam();
  ChannelConfig cfg;
  cfg.client_poll = poll == 0 ? PollMode::kBusy : PollMode::kEvent;
  cfg.server_poll = cfg.client_poll;
  cfg.max_msg = 1 << 20;
  std::string payload = payload_of(size);
  RpcResult r = run_rpc(kind, payload, cfg, /*repeats=*/2);
  EXPECT_EQ(r.response, upcased(payload)) << to_string(kind);
  EXPECT_EQ(r.stats.calls, 2u);
  EXPECT_EQ(r.leaked_tasks, 0u) << "server loop leaked for "
                                << to_string(kind);
  EXPECT_GT(r.elapsed, 0ns);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ProtocolRoundTrip,
    ::testing::Combine(::testing::ValuesIn(kAllProtocols),
                       ::testing::Values<size_t>(0, 1, 17, 512, 4096, 5000,
                                                 65536, 262144),
                       ::testing::Values(0, 1)),
    [](const auto& info) {
      std::string name(to_string(std::get<0>(info.param)));
      std::erase(name, '-');
      return name + "_" + std::to_string(std::get<1>(info.param)) + "B_" +
             (std::get<2>(info.param) == 0 ? "busy" : "event");
    });

// ---------------------------------------------------------------------------
// Per-protocol verbs footprints.
// ---------------------------------------------------------------------------

TEST(ProtocolFootprint, DirectWriteImmUsesOneWqePerDirection) {
  RpcResult r = run_rpc(ProtocolKind::kDirectWriteImm, payload_of(512), {});
  EXPECT_EQ(r.stats.write_imms, 2u);  // request + response
  EXPECT_EQ(r.stats.sends, 0u);
  EXPECT_EQ(r.stats.writes, 0u);
  EXPECT_EQ(r.stats.reads, 0u);
}

TEST(ProtocolFootprint, DirectWriteSendUsesWritePlusSend) {
  RpcResult r = run_rpc(ProtocolKind::kDirectWriteSend, payload_of(512), {});
  EXPECT_EQ(r.stats.writes, 2u);
  EXPECT_EQ(r.stats.sends, 2u);
  EXPECT_EQ(r.stats.write_imms, 0u);
}

TEST(ProtocolFootprint, PilafIssuesAtLeastThreeReads) {
  RpcResult r = run_rpc(ProtocolKind::kPilaf, payload_of(512), {});
  EXPECT_GE(r.stats.reads, 3u);  // 2 metadata + 1 payload (+ retries)
  EXPECT_EQ(r.stats.reads - r.stats.read_retries, 3u);
}

TEST(ProtocolFootprint, FarmIssuesAtLeastTwoReads) {
  RpcResult r = run_rpc(ProtocolKind::kFarm, payload_of(512), {});
  EXPECT_GE(r.stats.reads, 2u);
  EXPECT_EQ(r.stats.reads - r.stats.read_retries, 2u);
}

TEST(ProtocolFootprint, RfpFetchesWithSingleSizedRead) {
  // Repeat enough calls for the adaptive fetch delay to converge; the
  // steady state is one sized READ per call (plus the request WRITE).
  RpcResult r = run_rpc(ProtocolKind::kRfp, payload_of(512), {}, 20);
  EXPECT_EQ(r.stats.writes, 20u);  // one request write per call
  double reads_per_call =
      double(r.stats.reads - r.stats.read_retries) / 20.0;
  EXPECT_LT(reads_per_call, 1.6);  // ~1 sized fetch (+ rare slow-path pair)
}

TEST(ProtocolFootprint, RfpUndersizedHintPaysASecondRead) {
  // Call with a tiny hint so the first fetch misses part of the payload.
  Simulator sim;
  verbs::Fabric fabric(sim);
  verbs::Node* client = fabric.add_node();
  verbs::Node* server = fabric.add_node();
  auto ch = make_channel(ProtocolKind::kRfp, *client, *server,
                         make_upcase_handler(*server), {});
  std::string payload = payload_of(8192);
  std::string got;
  sim.spawn([](RpcChannel& ch, const std::string& payload,
               std::string& got) -> Task<void> {
    for (int i = 0; i < 5; ++i) {
      Buffer resp =
          (co_await ch.call(to_buffer(payload), /*hint=*/128)).value();
      got = as_string(resp);
    }
    ch.shutdown();
  }(*ch, payload, got));
  sim.run();
  EXPECT_EQ(got, upcased(payload));
  auto s = ch->stats();
  // Each call needs more than the single sized fetch (tail or slow path).
  EXPECT_GE(s.reads - s.read_retries, 10u);
}

TEST(ProtocolFootprint, HerdRespondsWithSend) {
  RpcResult r = run_rpc(ProtocolKind::kHerd, payload_of(512), {});
  EXPECT_EQ(r.stats.writes, 1u);  // request
  EXPECT_GE(r.stats.sends, 1u);   // response via SEND
  EXPECT_EQ(r.stats.reads, 0u);
}

TEST(ProtocolFootprint, EagerSegmentsLargeMessages) {
  ChannelConfig cfg;
  cfg.eager_slot = 4096;
  RpcResult r = run_rpc(ProtocolKind::kEagerSendRecv, payload_of(65536), {});
  // 64 KB / 4 KB slots -> at least 17 segments each way.
  EXPECT_GE(r.stats.sends, 34u);
}

TEST(ProtocolFootprint, RendezvousExchangesControlMessages) {
  RpcResult w = run_rpc(ProtocolKind::kWriteRndv, payload_of(8192), {});
  EXPECT_GE(w.stats.sends, 4u);       // RTS/CTS each way
  EXPECT_EQ(w.stats.write_imms, 2u);  // payload each way
  RpcResult rr = run_rpc(ProtocolKind::kReadRndv, payload_of(8192), {});
  EXPECT_EQ(rr.stats.reads, 2u);  // server reads req, client reads resp
}

TEST(ProtocolFootprint, HybridSwitchesAtThreshold) {
  ChannelConfig cfg;
  cfg.rndv_threshold = 4096;
  RpcResult small = run_rpc(ProtocolKind::kHybridEagerRndv, payload_of(512),
                            cfg);
  EXPECT_EQ(small.stats.write_imms, 0u);  // eager path only
  RpcResult large = run_rpc(ProtocolKind::kHybridEagerRndv, payload_of(8192),
                            cfg);
  EXPECT_EQ(large.stats.write_imms, 2u);  // Write-RNDV path
}

TEST(ProtocolFootprint, ArGrpcUsesReadRendezvousAboveThreshold) {
  RpcResult large = run_rpc(ProtocolKind::kArGrpc, payload_of(8192), {});
  EXPECT_EQ(large.stats.reads, 2u);
}

// ---------------------------------------------------------------------------
// Memory accounting: the scaling trade-off of §4.3.
// ---------------------------------------------------------------------------

TEST(ProtocolMemory, DirectProtocolsPinMaxMsgPerConnection) {
  ChannelConfig cfg;
  cfg.max_msg = 256 << 10;
  RpcResult direct = run_rpc(ProtocolKind::kDirectWriteImm, "x", cfg);
  RpcResult eager = run_rpc(ProtocolKind::kEagerSendRecv, "x", cfg);
  EXPECT_GE(direct.stats.server_registered, size_t{2} * cfg.max_msg);
  // Eager pins only the slot rings: far less server memory per connection.
  EXPECT_LT(eager.stats.server_registered,
            direct.stats.server_registered / 2);
}

// ---------------------------------------------------------------------------
// Latency orderings behind Fig. 4.
// ---------------------------------------------------------------------------

sim::Time latency_of(ProtocolKind k, size_t bytes, PollMode poll) {
  ChannelConfig cfg;
  cfg.client_poll = poll;
  cfg.server_poll = poll;
  cfg.max_msg = 1 << 20;
  // Median-free single-shot in deterministic virtual time: repeat 8 times
  // and divide, to amortize any warm-up effect.
  RpcResult r = run_rpc(k, payload_of(bytes), cfg, 8);
  return r.elapsed / 8;
}

TEST(ProtocolLatency, BusyBeatsEventForEveryProtocol) {
  for (ProtocolKind k : kAllProtocols) {
    EXPECT_LT(latency_of(k, 512, PollMode::kBusy),
              latency_of(k, 512, PollMode::kEvent))
        << to_string(k);
  }
}

TEST(ProtocolLatency, DirectWriteImmIsBestForSmallMessages) {
  sim::Time best = latency_of(ProtocolKind::kDirectWriteImm, 512,
                              PollMode::kBusy);
  for (ProtocolKind k : kAllProtocols) {
    if (k == ProtocolKind::kDirectWriteImm) continue;
    EXPECT_LE(best, latency_of(k, 512, PollMode::kBusy)) << to_string(k);
  }
}

TEST(ProtocolLatency, ChainedBeatsUnchainedWriteSend) {
  EXPECT_LT(latency_of(ProtocolKind::kChainedWriteSend, 512, PollMode::kBusy),
            latency_of(ProtocolKind::kDirectWriteSend, 512, PollMode::kBusy));
}

TEST(ProtocolLatency, RfpBeatsPilafAndFarm) {
  sim::Time rfp = latency_of(ProtocolKind::kRfp, 512, PollMode::kBusy);
  EXPECT_LT(rfp, latency_of(ProtocolKind::kPilaf, 512, PollMode::kBusy));
  EXPECT_LT(rfp, latency_of(ProtocolKind::kFarm, 512, PollMode::kBusy));
}

TEST(ProtocolLatency, EagerCopiesHurtLargeMessages) {
  // At 256 KB the eager slot copies and per-segment bookkeeping must lose
  // to the zero-copy rendezvous path.
  EXPECT_GT(latency_of(ProtocolKind::kEagerSendRecv, 262144, PollMode::kBusy),
            latency_of(ProtocolKind::kWriteRndv, 262144, PollMode::kBusy));
}

TEST(ProtocolLatency, RendezvousControlRttHurtsSmallMessages) {
  EXPECT_GT(latency_of(ProtocolKind::kWriteRndv, 64, PollMode::kBusy),
            latency_of(ProtocolKind::kEagerSendRecv, 64, PollMode::kBusy));
}

// ---------------------------------------------------------------------------
// Sequencing and isolation.
// ---------------------------------------------------------------------------

TEST(ProtocolSequencing, ManySequentialCallsStayCorrect) {
  for (ProtocolKind k :
       {ProtocolKind::kDirectWriteImm, ProtocolKind::kRfp,
        ProtocolKind::kEagerSendRecv, ProtocolKind::kHybridEagerRndv}) {
    Simulator sim;
    verbs::Fabric fabric(sim);
    verbs::Node* client = fabric.add_node();
    verbs::Node* server = fabric.add_node();
    auto ch = make_channel(k, *client, *server, make_upcase_handler(*server),
                           {});
    int mismatches = -1;
    sim.spawn([](RpcChannel& ch, int& mismatches) -> Task<void> {
      mismatches = 0;
      for (int i = 0; i < 50; ++i) {
        std::string payload = "call-" + std::to_string(i) + "-" +
                              payload_of(17 * (i % 9));
        Buffer resp = (co_await ch.call(
            to_buffer(payload), static_cast<uint32_t>(payload.size()))).value();
        if (as_string(resp) != upcased(payload)) ++mismatches;
      }
      ch.shutdown();
    }(*ch, mismatches));
    sim.run();
    EXPECT_EQ(mismatches, 0) << to_string(k);
    EXPECT_EQ(ch->stats().calls, 50u) << to_string(k);
  }
}

TEST(ProtocolSequencing, TwoChannelsOnOneServerAreIndependent) {
  Simulator sim;
  verbs::Fabric fabric(sim);
  verbs::Node* c1 = fabric.add_node();
  verbs::Node* c2 = fabric.add_node();
  verbs::Node* server = fabric.add_node();
  auto ch1 = make_channel(ProtocolKind::kDirectWriteImm, *c1, *server,
                          make_upcase_handler(*server), {});
  auto ch2 = make_channel(ProtocolKind::kRfp, *c2, *server,
                          make_upcase_handler(*server), {});
  std::string g1, g2;
  auto client = [](RpcChannel& ch, std::string msg,
                   std::string& got) -> Task<void> {
    for (int i = 0; i < 10; ++i) {
      Buffer resp = (co_await ch.call(
          to_buffer(msg), static_cast<uint32_t>(msg.size()))).value();
      got = as_string(resp);
    }
    ch.shutdown();
  };
  sim.spawn(client(*ch1, "alpha-channel", g1));
  sim.spawn(client(*ch2, "beta-channel", g2));
  sim.run();
  EXPECT_EQ(g1, "ALPHA-CHANNEL");
  EXPECT_EQ(g2, "BETA-CHANNEL");
  EXPECT_EQ(sim.live_tasks(), 0u);
}

}  // namespace
}  // namespace hatrpc::proto
