// VerbsCheck contract-verifier tests: one deliberate violation per rule
// class, asserting the exact structured diagnostic each produces; abort-mode
// throw semantics; the end-of-simulation leak audit; and the zero-overhead
// guarantee (enabling the checker on a clean program changes nothing).
//
// Every test pins the checker mode explicitly (set_mode) so the suite
// behaves identically whether or not the VERBSCHECK env var is set — CI
// runs the whole ctest suite under VERBSCHECK=abort.
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "verbs/verbs.h"

namespace hatrpc::verbs {
namespace {

using sim::PollMode;
using sim::Simulator;
using sim::Task;

using Mode = VerbsCheck::Mode;

struct Pair {
  Simulator sim;
  Fabric fabric{sim};
  Node* a = fabric.add_node();
  Node* b = fabric.add_node();
  CompletionQueue* a_scq = a->create_cq();
  CompletionQueue* a_rcq = a->create_cq();
  CompletionQueue* b_scq = b->create_cq();
  CompletionQueue* b_rcq = b->create_cq();
  QueuePair* qa = a->create_qp(*a_scq, *a_rcq);
  QueuePair* qb = b->create_qp(*b_scq, *b_rcq);

  explicit Pair(Mode mode) {
    fabric.check().set_mode(mode);
    Fabric::connect(*qa, *qb);
  }

  VerbsCheck& check() { return fabric.check(); }
};

/// The single diagnostic of rule `r`, asserting there is exactly one.
const Diagnostic& only(const VerbsCheck& vc, Rule r) {
  EXPECT_EQ(vc.count(r), 1u) << "expected exactly one " << to_string(r);
  for (const auto& d : vc.diagnostics())
    if (d.rule == r) return d;
  static Diagnostic none;
  return none;
}

// ---------------------------------------------------------------------------
// Rule class 1: qp-state — illegal modify transitions and posting in RESET.
// ---------------------------------------------------------------------------

TEST(VerbsCheckRule, IllegalModifyTransition) {
  Pair p(Mode::kRecord);  // connect already walked RESET->INIT->RTR->RTS
  EXPECT_EQ(p.check().total(), 0u) << "the legal connect walk is violation-free";
  p.qa->modify(QpState::kRtr);  // RTS -> RTR is not a legal transition
  const Diagnostic& d = only(p.check(), Rule::kQpState);
  EXPECT_EQ(d.node, p.a->id());
  EXPECT_EQ(d.qp, p.qa->qp_num());
  EXPECT_EQ(d.provenance, "modify");
  EXPECT_NE(d.detail.find("RTS -> RTR"), std::string::npos);
  EXPECT_NE(d.str().find("verbscheck[qp-state]"), std::string::npos);
}

TEST(VerbsCheckRule, PostRecvInReset) {
  Simulator sim;
  Fabric fabric(sim);
  fabric.check().set_mode(Mode::kRecord);
  Node* a = fabric.add_node();
  CompletionQueue* cq = a->create_cq();
  QueuePair* qp = a->create_qp(*cq, *cq);  // never connected: still RESET
  ASSERT_EQ(qp->state(), QpState::kReset);
  qp->post_recv(RecvWr{.wr_id = 3});
  const Diagnostic& d = only(fabric.check(), Rule::kQpState);
  EXPECT_EQ(d.wr_id, 3u);
  EXPECT_EQ(d.provenance, "post_recv");
  EXPECT_NE(d.detail.find("RESET"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Rule class 2: sge — local buffers not covered by any registration.
// ---------------------------------------------------------------------------

TEST(VerbsCheckRule, UnregisteredLocalSge) {
  Pair p(Mode::kRecord);
  MemoryRegion* dst = p.b->pd().alloc_mr(64);
  static std::array<std::byte, 64> unregistered{};
  p.sim.spawn([](Pair& p, MemoryRegion* dst) -> Task<void> {
    p.qb->post_recv(RecvWr{.wr_id = 1, .buf = {dst->data(), 64}});
    co_await p.qa->post_send(SendWr{.wr_id = 11,
                                    .opcode = Opcode::kSend,
                                    .local = {unregistered.data(), 16}});
    EXPECT_TRUE((co_await p.a_scq->wait(PollMode::kBusy)).ok())
        << "the simulator stays forgiving: the send still completes";
  }(p, dst));
  p.sim.run();
  const Diagnostic& d = only(p.check(), Rule::kSge);
  EXPECT_EQ(d.qp, p.qa->qp_num());
  EXPECT_EQ(d.wr_id, 11u);
  EXPECT_EQ(d.provenance, "post_send");
  EXPECT_NE(d.detail.find("not covered by any registered MR"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Rule class 3: use-after-dereg — stale lkey and stale rkey.
// ---------------------------------------------------------------------------

TEST(VerbsCheckRule, LocalUseAfterDereg) {
  Pair p(Mode::kRecord);
  MemoryRegion* dst = p.b->pd().alloc_mr(64);
  // Register EXISTING memory so the bytes stay valid after dereg — only the
  // registration dies, exactly the bug class this rule catches.
  static std::array<std::byte, 64> buf{};
  MemoryRegion* src = p.a->pd().reg_mr(buf.data(), buf.size());
  p.a->pd().dereg_mr(src);
  p.sim.spawn([](Pair& p, MemoryRegion* dst) -> Task<void> {
    p.qb->post_recv(RecvWr{.wr_id = 1, .buf = {dst->data(), 64}});
    co_await p.qa->post_send(SendWr{.wr_id = 21,
                                    .opcode = Opcode::kSend,
                                    .local = {buf.data(), 16}});
    co_await p.a_scq->wait(PollMode::kBusy);
  }(p, dst));
  p.sim.run();
  const Diagnostic& d = only(p.check(), Rule::kUseAfterDereg);
  EXPECT_EQ(d.wr_id, 21u);
  EXPECT_NE(d.detail.find("deregistered MR"), std::string::npos);
}

TEST(VerbsCheckRule, RemoteRkeyUseAfterDereg) {
  Pair p(Mode::kRecord);
  MemoryRegion* src = p.a->pd().alloc_mr(64);
  static std::array<std::byte, 64> target{};
  MemoryRegion* exported = p.b->pd().reg_mr(target.data(), target.size());
  const RemoteAddr stale = exported->remote(0);
  p.b->pd().dereg_mr(exported);
  p.sim.spawn([](Pair& p, MemoryRegion* src, RemoteAddr stale) -> Task<void> {
    co_await p.qa->post_send(SendWr{.wr_id = 22,
                                    .opcode = Opcode::kWrite,
                                    .local = {src->data(), 16},
                                    .remote = stale});
    // The runtime NAK agrees with the post-time diagnosis.
    EXPECT_EQ((co_await p.a_scq->wait(PollMode::kBusy)).status,
              WcStatus::kRemAccessErr);
  }(p, src, stale));
  p.sim.run();
  const Diagnostic& d = only(p.check(), Rule::kUseAfterDereg);
  EXPECT_EQ(d.wr_id, 22u);
  EXPECT_NE(d.detail.find("names a deregistered MR"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Rule class 4: access — registrations whose flags forbid the operation.
// ---------------------------------------------------------------------------

TEST(VerbsCheckRule, RemoteWriteWithoutRemoteWriteAccess) {
  Pair p(Mode::kRecord);
  MemoryRegion* src = p.a->pd().alloc_mr(64);
  // Read-only export: REMOTE_READ granted, REMOTE_WRITE withheld.
  MemoryRegion* dst =
      p.b->pd().alloc_mr(64, kAccessLocalWrite | kAccessRemoteRead);
  p.sim.spawn([](Pair& p, MemoryRegion* src, MemoryRegion* dst) -> Task<void> {
    co_await p.qa->post_send(SendWr{.wr_id = 31,
                                    .opcode = Opcode::kWrite,
                                    .local = {src->data(), 16},
                                    .remote = dst->remote(0)});
    EXPECT_EQ((co_await p.a_scq->wait(PollMode::kBusy)).status,
              WcStatus::kRemAccessErr)
        << "the responder NAKs at runtime too";
  }(p, src, dst));
  p.sim.run();
  const Diagnostic& d = only(p.check(), Rule::kAccess);
  EXPECT_EQ(d.wr_id, 31u);
  EXPECT_NE(d.detail.find("lacks REMOTE_WRITE"), std::string::npos);
}

TEST(VerbsCheckRule, RecvBufferWithoutLocalWrite) {
  Pair p(Mode::kRecord);
  MemoryRegion* dst =
      p.b->pd().alloc_mr(64, kAccessRemoteRead | kAccessRemoteWrite);
  p.qb->post_recv(RecvWr{.wr_id = 32, .buf = {dst->data(), 64}});
  const Diagnostic& d = only(p.check(), Rule::kAccess);
  EXPECT_EQ(d.qp, p.qb->qp_num());
  EXPECT_EQ(d.provenance, "post_recv");
  EXPECT_NE(d.detail.find("lacks LOCAL_WRITE"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Rule class 5: inline-cap — payloads the MMIO burst cannot carry.
// ---------------------------------------------------------------------------

TEST(VerbsCheckRule, OversizedInlinePayload) {
  Pair p(Mode::kRecord);
  const uint32_t maxi = p.qa->max_inline_data();
  MemoryRegion* src = p.a->pd().alloc_mr(maxi + 1);
  bool rejected = false;
  p.sim.spawn([](Pair& p, MemoryRegion* src, uint32_t maxi,
                 bool& rejected) -> Task<void> {
    try {
      co_await p.qa->post_send(SendWr{.wr_id = 41,
                                      .opcode = Opcode::kSend,
                                      .local = {src->data(), maxi + 1},
                                      .inline_data = true});
    } catch (const std::length_error&) {
      rejected = true;  // the verbs layer still rejects it outright
    }
  }(p, src, maxi, rejected));
  p.sim.run();
  EXPECT_TRUE(rejected);
  const Diagnostic& d = only(p.check(), Rule::kInlineCap);
  EXPECT_EQ(d.wr_id, 41u);
  EXPECT_NE(d.detail.find("exceeds max_inline_data"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Rule class 6: sge-cap — gather lists longer than the device cap.
// ---------------------------------------------------------------------------

TEST(VerbsCheckRule, GatherListExceedsMaxSge) {
  Pair p(Mode::kRecord);
  const uint32_t cap = p.fabric.cost().max_sge;
  MemoryRegion* src = p.a->pd().alloc_mr((cap + 1) * 8);
  MemoryRegion* dst = p.b->pd().alloc_mr((cap + 1) * 8);
  std::vector<Sge> sges;
  for (uint32_t i = 0; i <= cap; ++i)
    sges.push_back(Sge{src->data() + i * 8, 8});
  p.sim.spawn([](Pair& p, std::vector<Sge> sges,
                 MemoryRegion* dst) -> Task<void> {
    // Gather WRs are built as named objects, never as braced temporaries
    // with an owning sg_list — see the SendWr::sg_list note in qp.h.
    SendWr wr;
    wr.wr_id = 51;
    wr.opcode = Opcode::kWrite;
    wr.sg_list = std::move(sges);
    wr.remote = dst->remote(0);
    co_await p.qa->post_send(std::move(wr));
    EXPECT_TRUE((co_await p.a_scq->wait(PollMode::kBusy)).ok());
  }(p, std::move(sges), dst));
  p.sim.run();
  const Diagnostic& d = only(p.check(), Rule::kSgeCap);
  EXPECT_EQ(d.wr_id, 51u);
  EXPECT_NE(d.detail.find("exceeds max_sge=16"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Rule class 7: cq-overflow — more CQEs than the created capacity.
// ---------------------------------------------------------------------------

TEST(VerbsCheckRule, CqOverflowPastCreatedCapacity) {
  Simulator sim;
  Fabric fabric(sim);
  fabric.check().set_mode(Mode::kRecord);
  Node* a = fabric.add_node();
  Node* b = fabric.add_node();
  CompletionQueue* tiny = a->create_cq(2);  // ibv_create_cq(cqe=2)
  EXPECT_EQ(tiny->capacity(), 2u);
  CompletionQueue* a_rcq = a->create_cq();
  CompletionQueue* b_cq = b->create_cq();
  QueuePair* qa = a->create_qp(*tiny, *a_rcq);
  QueuePair* qb = b->create_qp(*b_cq, *b_cq);
  Fabric::connect(*qa, *qb);
  MemoryRegion* src = a->pd().alloc_mr(64);
  MemoryRegion* dst = b->pd().alloc_mr(64);
  sim.spawn([](QueuePair* qa, QueuePair* qb, MemoryRegion* src,
               MemoryRegion* dst) -> Task<void> {
    for (uint64_t i = 0; i < 3; ++i)
      qb->post_recv(RecvWr{.wr_id = i, .buf = {dst->data(), 64}});
    // Three signaled sends, nobody polling: the third CQE lands in a full CQ.
    for (uint64_t i = 0; i < 3; ++i)
      co_await qa->post_send(SendWr{.wr_id = 60 + i,
                                    .opcode = Opcode::kSend,
                                    .local = {src->data(), 8}});
  }(qa, qb, src, dst));
  sim.run();
  const Diagnostic& d = only(fabric.check(), Rule::kCqOverflow);
  EXPECT_EQ(d.provenance, "deliver");
  EXPECT_NE(d.detail.find("exceeds capacity 2"), std::string::npos);
  // Drain so teardown is leak-free.
  while (tiny->try_poll()) {
  }
}

// ---------------------------------------------------------------------------
// Rule class 8: rq-overflow — SRQ deeper than its max_wr.
// ---------------------------------------------------------------------------

TEST(VerbsCheckRule, SrqOverflowPastMaxWr) {
  Simulator sim;
  Fabric fabric(sim);
  fabric.check().set_mode(Mode::kRecord);
  Node* a = fabric.add_node();
  SharedReceiveQueue* srq = a->create_srq(2);
  EXPECT_EQ(srq->max_wr(), 2u);
  for (uint64_t i = 0; i < 3; ++i) srq->post_recv(RecvWr{.wr_id = 70 + i});
  const Diagnostic& d = only(fabric.check(), Rule::kRqOverflow);
  EXPECT_EQ(d.wr_id, 72u);
  EXPECT_EQ(d.provenance, "srq_post");
  EXPECT_NE(d.detail.find("exceed max_srq_wr=2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Rule class 9: rkey — one-sided ops against a never-registered rkey.
// ---------------------------------------------------------------------------

TEST(VerbsCheckRule, WriteToUnknownRkey) {
  Pair p(Mode::kRecord);
  MemoryRegion* src = p.a->pd().alloc_mr(64);
  p.sim.spawn([](Pair& p, MemoryRegion* src) -> Task<void> {
    co_await p.qa->post_send(SendWr{.wr_id = 81,
                                    .opcode = Opcode::kWrite,
                                    .local = {src->data(), 16},
                                    .remote = {src->addr(), 4242}});
    EXPECT_EQ((co_await p.a_scq->wait(PollMode::kBusy)).status,
              WcStatus::kRemAccessErr);
  }(p, src));
  p.sim.run();
  const Diagnostic& d = only(p.check(), Rule::kRkey);
  EXPECT_EQ(d.wr_id, 81u);
  EXPECT_NE(d.detail.find("rkey=4242 was never registered"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Rule class 10: double-completion — a CQE with no matching outstanding WR.
// ---------------------------------------------------------------------------

TEST(VerbsCheckRule, CompletionWithNoOutstandingWr) {
  Pair p(Mode::kRecord);
  p.a_scq->deliver(Wc{.wr_id = 99,
                      .opcode = WcOpcode::kSend,
                      .status = WcStatus::kSuccess,
                      .qp_num = p.qa->qp_num()});
  const Diagnostic& d = only(p.check(), Rule::kDoubleCompletion);
  EXPECT_EQ(d.wr_id, 99u);
  EXPECT_EQ(d.provenance, "deliver");
  EXPECT_NE(d.detail.find("no matching outstanding WR"), std::string::npos);
  p.a_scq->try_poll();  // consume the bogus CQE
}

// ---------------------------------------------------------------------------
// Rule class 11: use-after-destroy — destroyed QPs and closed SRQs.
// ---------------------------------------------------------------------------

TEST(VerbsCheckRule, PostToDestroyedQp) {
  Pair p(Mode::kRecord);
  p.a->destroy_qp(p.qa);
  EXPECT_TRUE(p.qa->destroyed());
  EXPECT_EQ(p.fabric.find_qp(p.qa->qp_num()), nullptr)
      << "destroyed QPs leave the fabric's lookup table";
  p.qa->post_recv(RecvWr{.wr_id = 5});
  const Diagnostic& d = only(p.check(), Rule::kUseAfterDestroy);
  EXPECT_EQ(d.qp, p.qa->qp_num());
  EXPECT_NE(d.detail.find("destroyed QP"), std::string::npos);
  // The flushed recv CQE still arrives (graveyard semantics, not UB).
  EXPECT_TRUE(p.a_rcq->try_poll().has_value());
}

TEST(VerbsCheckRule, PostToClosedSrq) {
  Simulator sim;
  Fabric fabric(sim);
  fabric.check().set_mode(Mode::kRecord);
  Node* a = fabric.add_node();
  SharedReceiveQueue* srq = a->create_srq();
  srq->post_recv(RecvWr{.wr_id = 1});
  srq->close();
  srq->post_recv(RecvWr{.wr_id = 2});
  const Diagnostic& d = only(fabric.check(), Rule::kUseAfterDestroy);
  EXPECT_EQ(d.wr_id, 2u);
  EXPECT_NE(d.detail.find("closed SRQ"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Rule class 12: leak — the end-of-simulation audit finds orphaned WRs.
// ---------------------------------------------------------------------------

TEST(VerbsCheckRule, AuditFlagsNeverCompletedSend) {
  Pair p(Mode::kRecord);
  MemoryRegion* src = p.a->pd().alloc_mr(64);
  p.sim.spawn([](Pair& p, MemoryRegion* src) -> Task<void> {
    // SEND with no posted recv and infinite RNR: the WQE blocks forever.
    co_await p.qa->post_send(SendWr{.wr_id = 91,
                                    .opcode = Opcode::kSend,
                                    .local = {src->data(), 8}});
  }(p, src));
  p.sim.run();
  AuditReport r = p.fabric.audit();
  EXPECT_FALSE(r.clean());
  EXPECT_EQ(r.outstanding_sends, 1u);
  EXPECT_EQ(p.check().count(Rule::kLeak), 1u);
  const Diagnostic& d = only(p.check(), Rule::kLeak);
  EXPECT_EQ(d.provenance, "audit");
  EXPECT_NE(d.detail.find("outstanding_sends=1"), std::string::npos);
  EXPECT_NE(d.detail.find("clean=NO"), std::string::npos);
  // Unblock the parked WQE so the task chain drains (LeakSanitizer would
  // otherwise report the suspended coroutine frames): the late recv lets
  // the SEND complete and retires the shadow-tracked WR.
  MemoryRegion* dst = p.b->pd().alloc_mr(64);
  p.qb->post_recv(RecvWr{.wr_id = 92, .buf = {dst->data(), 64}});
  p.sim.run();
  EXPECT_EQ(p.sim.live_tasks(), 0u);
  EXPECT_TRUE(p.fabric.audit().clean());
}

TEST(VerbsCheck, AuditIsCleanAfterDrainedTraffic) {
  Pair p(Mode::kRecord);
  MemoryRegion* src = p.a->pd().alloc_mr(64);
  MemoryRegion* dst = p.b->pd().alloc_mr(64);
  p.sim.spawn([](Pair& p, MemoryRegion* src, MemoryRegion* dst) -> Task<void> {
    p.qb->post_recv(RecvWr{.wr_id = 1, .buf = {dst->data(), 64}});
    co_await p.qa->post_send(SendWr{.wr_id = 1,
                                    .opcode = Opcode::kSend,
                                    .local = {src->data(), 8}});
    EXPECT_TRUE((co_await p.a_scq->wait(PollMode::kBusy)).ok());
    EXPECT_TRUE((co_await p.b_rcq->wait(PollMode::kBusy)).ok());
    // An unsignaled WRITE retires without a CQE — not a leak.
    co_await p.qa->post_send(SendWr{.wr_id = 2,
                                    .opcode = Opcode::kWrite,
                                    .local = {src->data(), 8},
                                    .remote = dst->remote(8),
                                    .signaled = false});
  }(p, src, dst));
  p.sim.run();
  AuditReport r = p.fabric.audit();
  EXPECT_TRUE(r.clean()) << r.str();
  EXPECT_EQ(r.outstanding_sends, 0u);
  EXPECT_EQ(r.live_qps, 2u);
  EXPECT_EQ(r.unconsumed_cqes, 0u);
  EXPECT_EQ(p.check().total(), 0u);
}

// ---------------------------------------------------------------------------
// Abort mode: the first violation throws ContractViolation at the post.
// ---------------------------------------------------------------------------

TEST(VerbsCheck, AbortModeThrowsAtThePost) {
  Pair p(Mode::kAbort);
  MemoryRegion* dst = p.b->pd().alloc_mr(64);
  static std::array<std::byte, 16> unregistered{};
  Rule caught = Rule::kCount;
  p.sim.spawn([](Pair& p, MemoryRegion* dst, Rule& caught) -> Task<void> {
    p.qb->post_recv(RecvWr{.wr_id = 1, .buf = {dst->data(), 64}});
    try {
      co_await p.qa->post_send(SendWr{.wr_id = 1,
                                      .opcode = Opcode::kSend,
                                      .local = {unregistered.data(), 8}});
    } catch (const ContractViolation& e) {
      caught = e.diagnostic.rule;
      EXPECT_NE(std::string(e.what()).find("verbscheck[sge]"),
                std::string::npos);
    }
  }(p, dst, caught));
  p.sim.run();
  EXPECT_EQ(caught, Rule::kSge);
  EXPECT_EQ(p.check().total(), 1u) << "recorded as well as thrown";
}

TEST(VerbsCheck, TolerateSuppressesAbortButStillRecords) {
  Pair p(Mode::kAbort);
  {
    VerbsCheck::Tolerate tol(p.check());
    p.qa->modify(QpState::kInit);  // RTS -> INIT: illegal, but tolerated
  }
  EXPECT_EQ(p.check().count(Rule::kQpState), 1u);
}

// ---------------------------------------------------------------------------
// Zero overhead when off: enabling the checker on a clean program changes
// neither results nor a single counter — same seed, same schedule, same dump.
// ---------------------------------------------------------------------------

std::string echo_workload_dump(Mode mode) {
  Pair p(mode);
  MemoryRegion* src = p.a->pd().alloc_mr(256);
  MemoryRegion* dst = p.b->pd().alloc_mr(256);
  p.sim.spawn([](Pair& p, MemoryRegion* src, MemoryRegion* dst) -> Task<void> {
    for (uint64_t i = 0; i < 8; ++i) {
      p.qb->post_recv(RecvWr{.wr_id = i, .buf = {dst->data(), 256}});
      co_await p.qa->post_send(SendWr{.wr_id = i,
                                      .opcode = Opcode::kSend,
                                      .local = {src->data(), 64}});
      EXPECT_TRUE((co_await p.a_scq->wait(PollMode::kBusy)).ok());
      EXPECT_TRUE((co_await p.b_rcq->wait(PollMode::kBusy)).ok());
      co_await p.qa->post_send(SendWr{.wr_id = 100 + i,
                                      .opcode = Opcode::kWrite,
                                      .local = {src->data(), 128},
                                      .remote = dst->remote(64),
                                      .signaled = (i % 2 == 0)});
      if (i % 2 == 0) {
        EXPECT_TRUE((co_await p.a_scq->wait(PollMode::kBusy)).ok());
      }
    }
  }(p, src, dst));
  p.sim.run();
  EXPECT_TRUE(p.fabric.audit().clean());
  EXPECT_EQ(p.check().total(), 0u);
  return std::to_string(p.sim.now().count()) + "\n" +
         p.fabric.obs().counters.dump();
}

TEST(VerbsCheck, CheckingIsInvisibleToCleanPrograms) {
  const std::string off1 = echo_workload_dump(Mode::kOff);
  const std::string off2 = echo_workload_dump(Mode::kOff);
  const std::string rec = echo_workload_dump(Mode::kRecord);
  const std::string abt = echo_workload_dump(Mode::kAbort);
  EXPECT_EQ(off1, off2) << "baseline determinism";
  EXPECT_EQ(off1, rec) << "record mode must not perturb time or counters";
  EXPECT_EQ(off1, abt) << "abort mode must not perturb time or counters";
}

// Every rule class has a distinct kebab-case name for grep-able diagnostics.
TEST(VerbsCheck, RuleNamesAreDistinct) {
  std::vector<std::string> names;
  for (uint8_t i = 0; i < static_cast<uint8_t>(Rule::kCount); ++i)
    names.emplace_back(to_string(static_cast<Rule>(i)));
  for (size_t i = 0; i < names.size(); ++i)
    for (size_t j = i + 1; j < names.size(); ++j)
      EXPECT_NE(names[i], names[j]);
  EXPECT_EQ(names.size(), 12u);
}

}  // namespace
}  // namespace hatrpc::verbs
