// Core-runtime tests: envelope round trips, dispatcher error replies, plan
// caching, per-plan channel sharing (optimization isolation), the RDMA and
// TCP call paths, and heterogeneous per-function plans on one connection —
// the paper's central mechanism.
#include <gtest/gtest.h>

#include <string>

#include "core/engine.h"

namespace hatrpc::core {
namespace {

using sim::PollMode;
using sim::Simulator;
using sim::Task;
using namespace std::chrono_literals;

Buffer bytes_of(const std::string& s) {
  auto* p = reinterpret_cast<const std::byte*>(s.data());
  return Buffer(p, p + s.size());
}
std::string str_of(View v) {
  return {reinterpret_cast<const char*>(v.data()), v.size()};
}

TEST(Dispatcher, EnvelopeRoundTrip) {
  Buffer env = HatDispatcher::make_call("Ping", bytes_of("ARGS"), 7);
  thrift::TMemoryBuffer b = thrift::TMemoryBuffer::wrap(env);
  thrift::TBinaryProtocol p(b);
  auto head = p.readMessageBegin();
  EXPECT_EQ(head.name, "Ping");
  EXPECT_EQ(head.type, thrift::TMessageType::kCall);
  EXPECT_EQ(head.seqid, 7);
}

TEST(Dispatcher, DispatchesToRegisteredMethod) {
  Simulator sim;
  HatDispatcher d;
  d.register_method("Echo", [](View args) -> Task<Buffer> {
    co_return Buffer(args.begin(), args.end());
  });
  EXPECT_TRUE(d.has_method("Echo"));
  Buffer env = HatDispatcher::make_call("Echo", bytes_of("payload"), 1);
  std::string got;
  sim.spawn([](HatDispatcher& d, Buffer env, std::string& got) -> Task<void> {
    Buffer reply = co_await d.process(env);
    Buffer result = HatDispatcher::parse_reply(reply, "Echo");
    got = str_of(result);
  }(d, env, got));
  sim.run();
  EXPECT_EQ(got, "payload");
}

TEST(Dispatcher, UnknownMethodYieldsApplicationException) {
  Simulator sim;
  HatDispatcher d;
  Buffer env = HatDispatcher::make_call("Nope", bytes_of(""), 2);
  bool threw = false;
  sim.spawn([](HatDispatcher& d, Buffer env, bool& threw) -> Task<void> {
    Buffer reply = co_await d.process(env);
    try {
      HatDispatcher::parse_reply(reply, "Nope");
    } catch (const thrift::TApplicationException& e) {
      threw = true;
      EXPECT_EQ(e.kind(),
                thrift::TApplicationException::Kind::kUnknownMethod);
    }
  }(d, env, threw));
  sim.run();
  EXPECT_TRUE(threw);
}

TEST(Dispatcher, MismatchedReplyNameThrows) {
  Simulator sim;
  HatDispatcher d;
  d.register_method("A", [](View) -> Task<Buffer> { co_return Buffer{}; });
  Buffer env = HatDispatcher::make_call("A", bytes_of(""), 3);
  sim.spawn([](HatDispatcher& d, Buffer env) -> Task<void> {
    Buffer reply = co_await d.process(env);
    EXPECT_THROW(HatDispatcher::parse_reply(reply, "B"),
                 thrift::TApplicationException);
  }(d, env));
  sim.run();
}

// ---------------------------------------------------------------------------
// Engine fixture: a service with heterogeneous per-function hints.
// ---------------------------------------------------------------------------

struct Cluster {
  Simulator sim;
  verbs::Fabric fabric{sim};
  thrift::SocketNet net{fabric};
  verbs::Node* client = fabric.add_node();
  verbs::Node* server_node = fabric.add_node();
};

hint::ServiceHints heterogeneous_hints() {
  using namespace hatrpc::hint;
  ServiceHints h;
  h.service().add(Side::kShared, Key::kConcurrency,
                  parse_value(Key::kConcurrency, "1"));
  h.function("FastGet").add(Side::kShared, Key::kPerfGoal,
                            parse_value(Key::kPerfGoal, "latency"));
  h.function("FastGet").add(Side::kShared, Key::kPayloadSize,
                            parse_value(Key::kPayloadSize, "512"));
  h.function("BulkPut").add(Side::kShared, Key::kPerfGoal,
                            parse_value(Key::kPerfGoal, "res_util"));
  h.function("BulkPut").add(Side::kShared, Key::kPayloadSize,
                            parse_value(Key::kPayloadSize, "128k"));
  h.function("Legacy").add(Side::kShared, Key::kTransport,
                           parse_value(Key::kTransport, "tcp"));
  return h;
}

void register_echo_methods(HatServer& server) {
  for (const char* m : {"FastGet", "BulkPut", "Legacy", "Plain"}) {
    server.dispatcher().register_method(
        m, [&server](View args) -> Task<Buffer> {
          co_await server.node().cpu().compute(300ns);
          co_return Buffer(args.begin(), args.end());
        });
  }
}

TEST(Engine, CallOverRdmaRoundTrips) {
  Cluster c;
  HatServer server(*c.server_node, heterogeneous_hints(), {});
  register_echo_methods(server);
  HatConnection conn(*c.client, server);
  std::string got;
  c.sim.spawn([](HatConnection& conn, std::string& got,
                 HatServer& server) -> Task<void> {
    Buffer r = co_await conn.call("FastGet", bytes_of("hello-hat"));
    got = str_of(r);
    server.stop();
  }(conn, got, server));
  c.sim.run();
  EXPECT_EQ(got, "hello-hat");
  EXPECT_EQ(c.sim.live_tasks(), 0u);
}

TEST(Engine, PlansAreCachedPerMethod) {
  Cluster c;
  HatServer server(*c.server_node, heterogeneous_hints(), {});
  register_echo_methods(server);
  HatConnection conn(*c.client, server);
  const hint::Plan& p1 = conn.plan_for("FastGet");
  const hint::Plan& p2 = conn.plan_for("FastGet");
  EXPECT_EQ(&p1, &p2);  // same object — resolved once (§4.3 caching)
  server.stop();
}

TEST(Engine, HeterogeneousFunctionsGetDistinctPlans) {
  Cluster c;
  HatServer server(*c.server_node, heterogeneous_hints(), {});
  register_echo_methods(server);
  HatConnection conn(*c.client, server);
  const hint::Plan& fast = conn.plan_for("FastGet");
  const hint::Plan& bulk = conn.plan_for("BulkPut");
  EXPECT_EQ(fast.protocol, proto::ProtocolKind::kDirectWriteImm);
  EXPECT_EQ(fast.client_poll, PollMode::kBusy);
  EXPECT_EQ(bulk.protocol, proto::ProtocolKind::kWriteRndv);
  EXPECT_EQ(bulk.client_poll, PollMode::kEvent);
  server.stop();
}

TEST(Engine, ChannelsMaterializeLazilyAndAreSharedPerPlan) {
  Cluster c;
  hint::ServiceHints h = heterogeneous_hints();
  // Two functions with identical hints must share one channel.
  h.function("FastGet2").add(hint::Side::kShared, hint::Key::kPerfGoal,
                             hint::parse_value(hint::Key::kPerfGoal,
                                               "latency"));
  h.function("FastGet2").add(hint::Side::kShared, hint::Key::kPayloadSize,
                             hint::parse_value(hint::Key::kPayloadSize,
                                               "512"));
  HatServer server(*c.server_node, h, {});
  register_echo_methods(server);
  server.dispatcher().register_method(
      "FastGet2",
      [](View args) -> Task<Buffer> {
        co_return Buffer(args.begin(), args.end());
      });
  HatConnection conn(*c.client, server);
  EXPECT_EQ(conn.channel_count(), 0u);  // lazy
  c.sim.spawn([](HatConnection& conn, HatServer& server) -> Task<void> {
    co_await conn.call("FastGet", bytes_of("a"));
    co_await conn.call("FastGet2", bytes_of("b"));  // same plan -> reuse
    co_await conn.call("BulkPut", bytes_of("c"));   // new plan -> new channel
    server.stop();
  }(conn, server));
  c.sim.run();
  EXPECT_EQ(conn.channel_count(), 2u);
}

TEST(Engine, ChannelMatchesPlanProtocol) {
  Cluster c;
  HatServer server(*c.server_node, heterogeneous_hints(), {});
  register_echo_methods(server);
  HatConnection conn(*c.client, server);
  c.sim.spawn([](HatConnection& conn, HatServer& server) -> Task<void> {
    co_await conn.call("FastGet", bytes_of("x"));
    server.stop();
  }(conn, server));
  c.sim.run();
  const proto::RpcChannel* ch = conn.channel_for_plan(conn.plan_for("FastGet"));
  ASSERT_NE(ch, nullptr);
  EXPECT_EQ(ch->kind(), proto::ProtocolKind::kDirectWriteImm);
  EXPECT_EQ(ch->stats().calls, 1u);
}

TEST(Engine, TcpHintedFunctionUsesSocketPath) {
  Cluster c;
  HatServer server(*c.server_node, heterogeneous_hints(), {}, &c.net);
  register_echo_methods(server);
  HatConnection conn(*c.client, server);
  std::string got;
  c.sim.spawn([](HatConnection& conn, std::string& got,
                 HatServer& server) -> Task<void> {
    Buffer r = co_await conn.call("Legacy", bytes_of("over-tcp"));
    got = str_of(r);
    server.stop();
  }(conn, got, server));
  c.sim.run();
  EXPECT_EQ(got, "over-tcp");
  EXPECT_EQ(conn.channel_count(), 0u);  // no RDMA channel was created
}

TEST(Engine, TcpWithoutSocketNetIsAnError) {
  Cluster c;
  HatServer server(*c.server_node, heterogeneous_hints(), {});  // no net
  register_echo_methods(server);
  HatConnection conn(*c.client, server);
  c.sim.spawn([](HatConnection& conn) -> Task<void> {
    co_await conn.call("Legacy", bytes_of("x"));
  }(conn));
  EXPECT_THROW(c.sim.run(), std::logic_error);
}

TEST(Engine, MixedTrafficOnOneConnectionStaysIsolated) {
  // The headline mechanism: latency and bulk functions interleave on one
  // connection, each over its own channel, both correct.
  Cluster c;
  HatServer server(*c.server_node, heterogeneous_hints(), {});
  register_echo_methods(server);
  HatConnection conn(*c.client, server);
  int ok = 0;
  c.sim.spawn([](HatConnection& conn, int& ok, HatServer& server)
                  -> Task<void> {
    for (int i = 0; i < 10; ++i) {
      std::string small = "get-" + std::to_string(i);
      std::string big(20000, static_cast<char>('A' + i));
      Buffer r1 = co_await conn.call("FastGet", bytes_of(small));
      Buffer r2 = co_await conn.call("BulkPut", bytes_of(big));
      if (str_of(r1) == small && str_of(r2) == big) ++ok;
    }
    server.stop();
  }(conn, ok, server));
  c.sim.run();
  EXPECT_EQ(ok, 10);
}

TEST(Engine, UnhintedMethodGetsDefaultPlan) {
  Cluster c;
  HatServer server(*c.server_node, heterogeneous_hints(), {});
  register_echo_methods(server);
  HatConnection conn(*c.client, server);
  const hint::Plan& plan = conn.plan_for("Plain");
  // No payload hint -> the engine cannot size pre-known buffers and keeps
  // the conservative adaptive protocol.
  EXPECT_EQ(plan.protocol, proto::ProtocolKind::kHybridEagerRndv);
  EXPECT_EQ(plan.transport, hint::Transport::kRdma);
  server.stop();
}

TEST(Dispatcher, HandlerExceptionBecomesInternalErrorReply) {
  // An undeclared exception must not kill the serve loop: the client gets
  // a TApplicationException(kInternalError) and the server keeps serving.
  Cluster c;
  HatServer server(*c.server_node, heterogeneous_hints(), {});
  int calls = 0;
  server.dispatcher().register_method(
      "Flaky", [&calls](View) -> Task<Buffer> {
        if (++calls == 1) throw std::runtime_error("handler blew up");
        co_return bytes_of("recovered");
      });
  HatConnection conn(*c.client, server);
  bool caught = false;
  std::string second;
  c.sim.spawn([](HatConnection& conn, bool& caught, std::string& second,
                 HatServer& server) -> Task<void> {
    try {
      co_await conn.call("Flaky", {});
    } catch (const thrift::TApplicationException& e) {
      caught = true;
      EXPECT_EQ(e.kind(),
                thrift::TApplicationException::Kind::kInternalError);
      EXPECT_STREQ(e.what(), "handler blew up");
    }
    // The SAME connection and server must still work afterwards.
    second = str_of(co_await conn.call("Flaky", {}));
    server.stop();
  }(conn, caught, second, server));
  c.sim.run();
  EXPECT_TRUE(caught);
  EXPECT_EQ(second, "recovered");
  EXPECT_EQ(c.sim.live_tasks(), 0u);
}

TEST(Multiplexed, TwoServicesShareOneConnection) {
  // Thrift multiplexing: "Calc:Add" and "Echo:Add" are distinct methods on
  // one dispatcher/connection.
  Cluster c;
  HatServer server(*c.server_node, heterogeneous_hints(), {});
  MultiplexedDispatcher calc(server.dispatcher(), "Calc");
  MultiplexedDispatcher echo(server.dispatcher(), "Echo");
  calc.register_method("Add", [](View) -> Task<Buffer> {
    co_return bytes_of("calc-add");
  });
  echo.register_method("Add", [](View) -> Task<Buffer> {
    co_return bytes_of("echo-add");
  });
  HatConnection conn(*c.client, server);
  MultiplexedCaller calc_caller(conn, "Calc");
  MultiplexedCaller echo_caller(conn, "Echo");
  std::string r1, r2;
  c.sim.spawn([](MultiplexedCaller& a, MultiplexedCaller& b, std::string& r1,
                 std::string& r2, HatServer& server) -> Task<void> {
    r1 = str_of(co_await a.call("Add", {}));
    r2 = str_of(co_await b.call("Add", {}));
    server.stop();
  }(calc_caller, echo_caller, r1, r2, server));
  c.sim.run();
  EXPECT_EQ(r1, "calc-add");
  EXPECT_EQ(r2, "echo-add");
}

TEST(Multiplexed, UnprefixedCallMissesService) {
  Cluster c;
  HatServer server(*c.server_node, heterogeneous_hints(), {});
  MultiplexedDispatcher calc(server.dispatcher(), "Calc");
  calc.register_method("Add", [](View) -> Task<Buffer> {
    co_return bytes_of("x");
  });
  EXPECT_TRUE(server.dispatcher().has_method("Calc:Add"));
  EXPECT_FALSE(server.dispatcher().has_method("Add"));
  server.stop();
}

}  // namespace
}  // namespace hatrpc::core
