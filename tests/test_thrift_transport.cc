// Transport-layer tests: simulated TCP/IPoIB sockets (byte-stream
// semantics, EOF, latency/bandwidth behaviour), framed messaging, the three
// server flavors, and the TRdma bridge (TSocket-compatible programming
// model over every RDMA protocol).
#include <gtest/gtest.h>

#include <string>

#include "thrift/rdma.h"
#include "thrift/server.h"

namespace hatrpc::thrift {
namespace {

using sim::PollMode;
using sim::Simulator;
using sim::Task;
using namespace std::chrono_literals;

View view_of(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

std::string str_of(View v) {
  return {reinterpret_cast<const char*>(v.data()), v.size()};
}

struct Net {
  Simulator sim;
  verbs::Fabric fabric{sim};
  SocketNet net{fabric};
  verbs::Node* a = fabric.add_node();
  verbs::Node* b = fabric.add_node();
};

TEST(SimSocket, ByteStreamRoundTrip) {
  Net n;
  std::string got;
  Listener* lis = n.net.listen(*n.b, 9090);
  n.sim.spawn([](Net& n, Listener* lis, std::string& got) -> Task<void> {
    SimSocket* s = co_await lis->accept();
    std::byte buf[64];
    size_t k = co_await s->read(buf, sizeof buf);
    got.assign(reinterpret_cast<char*>(buf), k);
    co_await s->write(view_of("pong"));
  }(n, lis, got));
  std::string reply;
  n.sim.spawn([](Net& n, std::string& reply) -> Task<void> {
    SimSocket* c = co_await n.net.connect(*n.a, *n.b, 9090);
    co_await c->write(view_of("ping"));
    std::byte buf[64];
    size_t k = co_await c->read(buf, sizeof buf);
    reply.assign(reinterpret_cast<char*>(buf), k);
    c->close();
  }(n, reply));
  n.sim.run();
  EXPECT_EQ(got, "ping");
  EXPECT_EQ(reply, "pong");
}

TEST(SimSocket, EofAfterClose) {
  Net n;
  Listener* lis = n.net.listen(*n.b, 1);
  size_t got = 99;
  n.sim.spawn([](Listener* lis, size_t& got) -> Task<void> {
    SimSocket* s = co_await lis->accept();
    std::byte buf[8];
    got = co_await s->read(buf, 8);  // peer closes without sending
  }(lis, got));
  n.sim.spawn([](Net& n) -> Task<void> {
    SimSocket* c = co_await n.net.connect(*n.a, *n.b, 1);
    c->close();
  }(n));
  n.sim.run();
  EXPECT_EQ(got, 0u);
}

TEST(SimSocket, ConnectToUnboundPortThrows) {
  Net n;
  n.sim.spawn([](Net& n) -> Task<void> {
    co_await n.net.connect(*n.a, *n.b, 4242);
  }(n));
  EXPECT_THROW(n.sim.run(), TTransportException);
}

TEST(SimSocket, LargeTransferIsBandwidthBound) {
  // 8 MB at IPoIB's ~3 GB/s is ~2.7 ms; native RDMA would take ~0.64 ms.
  Net n;
  Listener* lis = n.net.listen(*n.b, 2);
  constexpr size_t kBytes = 8 << 20;
  sim::Time done{};
  n.sim.spawn([](Net& n, Listener* lis, sim::Time& done) -> Task<void> {
    SimSocket* s = co_await lis->accept();
    std::vector<std::byte> buf(kBytes);
    co_await s->read_exact(buf.data(), kBytes);
    done = n.sim.now();
  }(n, lis, done));
  n.sim.spawn([](Net& n) -> Task<void> {
    SimSocket* c = co_await n.net.connect(*n.a, *n.b, 2);
    std::vector<std::byte> data(kBytes, std::byte{0x5a});
    co_await c->write(data);
  }(n));
  n.sim.run();
  EXPECT_GE(done, 2500us);
  EXPECT_LE(done, 4000us);
}

TEST(SimSocket, SmallRpcLatencyRealisticForIpoib) {
  // A 64B echo over IPoIB should land in the tens of microseconds —
  // roughly an order of magnitude above native RDMA.
  Net n;
  Listener* lis = n.net.listen(*n.b, 3);
  n.sim.spawn([](Listener* lis) -> Task<void> {
    SimSocket* s = co_await lis->accept();
    std::byte buf[64];
    co_await s->read_exact(buf, 64);
    co_await s->write({buf, 64});
  }(lis));
  sim::Time done{};
  n.sim.spawn([](Net& n, sim::Time& done) -> Task<void> {
    SimSocket* c = co_await n.net.connect(*n.a, *n.b, 3);
    sim::Time t0 = n.sim.now();
    std::byte buf[64]{};
    co_await c->write({buf, 64});
    co_await c->read_exact(buf, 64);
    done = n.sim.now() - t0;
    c->close();
  }(n, done));
  n.sim.run();
  EXPECT_GE(done, 10us);
  EXPECT_LE(done, 60us);
}

TEST(FramedTransport, MessageBoundariesPreserved) {
  Net n;
  Listener* lis = n.net.listen(*n.b, 4);
  std::vector<std::string> got;
  n.sim.spawn([](Listener* lis, std::vector<std::string>& got) -> Task<void> {
    SimSocket* s = co_await lis->accept();
    TFramedTransport f(s);
    while (auto m = co_await f.recv()) got.push_back(str_of(*m));
  }(lis, got));
  n.sim.spawn([](Net& n) -> Task<void> {
    SimSocket* c = co_await n.net.connect(*n.a, *n.b, 4);
    TFramedTransport f(c);
    co_await f.send(view_of("first"));
    co_await f.send(view_of(""));
    co_await f.send(view_of(std::string(100000, 'z')));
    c->close();
  }(n));
  n.sim.run();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], "first");
  EXPECT_EQ(got[1], "");
  EXPECT_EQ(got[2], std::string(100000, 'z'));
}

Processor echo_processor(verbs::Node& node) {
  return [&node](View req) -> Task<Buffer> {
    co_await node.cpu().compute(500ns);
    co_return Buffer(req.begin(), req.end());
  };
}

TEST(TServer, ThreadedServesConcurrentClients) {
  Net n;
  TServer server(n.net, *n.b, 5, echo_processor(*n.b),
                 {.kind = ServerKind::kThreaded});
  server.start();
  int ok = 0;
  for (int i = 0; i < 4; ++i) {
    n.sim.spawn([](Net& n, int i, int& ok) -> Task<void> {
      SimSocket* c = co_await n.net.connect(*n.a, *n.b, 5);
      SocketRpcClient rpc(c);
      for (int j = 0; j < 5; ++j) {
        std::string msg = "c" + std::to_string(i) + "-" + std::to_string(j);
        Buffer resp = co_await rpc.call(view_of(msg));
        if (str_of(resp) == msg) ++ok;
      }
      rpc.close();
    }(n, i, ok));
  }
  n.sim.run_until(sim::Time(50ms));
  EXPECT_EQ(ok, 20);
  EXPECT_EQ(server.requests_served(), 20u);
}

TEST(TServer, SimpleServerSerializesConnections) {
  // With TSimpleServer a second client cannot progress until the first
  // connection closes.
  Net n;
  TServer server(n.net, *n.b, 6, echo_processor(*n.b),
                 {.kind = ServerKind::kSimple});
  server.start();
  sim::Time first_done{}, second_done{};
  n.sim.spawn([](Net& n, sim::Time& done) -> Task<void> {
    SimSocket* c = co_await n.net.connect(*n.a, *n.b, 6);
    SocketRpcClient rpc(c);
    co_await rpc.call(view_of("one"));
    co_await n.sim.sleep(1ms);  // hold the connection
    rpc.close();
    done = n.sim.now();
  }(n, first_done));
  n.sim.spawn([](Net& n, sim::Time& done) -> Task<void> {
    co_await n.sim.sleep(100us);  // connect strictly second
    SimSocket* c = co_await n.net.connect(*n.a, *n.b, 6);
    SocketRpcClient rpc(c);
    co_await rpc.call(view_of("two"));
    done = n.sim.now();
    rpc.close();
  }(n, second_done));
  n.sim.run_until(sim::Time(50ms));
  EXPECT_GT(second_done, first_done);
}

TEST(TServer, ThreadPoolBoundsConcurrency) {
  Net n;
  int in_handler = 0, max_in_handler = 0;
  Processor slow = [&](View req) -> Task<Buffer> {
    ++in_handler;
    max_in_handler = std::max(max_in_handler, in_handler);
    co_await n.sim.sleep(100us);
    --in_handler;
    co_return Buffer(req.begin(), req.end());
  };
  TServer server(n.net, *n.b, 7, slow,
                 {.kind = ServerKind::kThreadPool, .pool_workers = 2});
  server.start();
  for (int i = 0; i < 6; ++i) {
    n.sim.spawn([](Net& n, int& /*unused*/) -> Task<void> {
      SimSocket* c = co_await n.net.connect(*n.a, *n.b, 7);
      SocketRpcClient rpc(c);
      co_await rpc.call(view_of("x"));
      rpc.close();
    }(n, in_handler));
  }
  n.sim.run_until(sim::Time(50ms));
  EXPECT_LE(max_in_handler, 2);
  EXPECT_EQ(server.requests_served(), 6u);
}

TEST(TServer, ConnectionTrackingShrinksAndStopIsIdempotent) {
  // conns_ must track LIVE connections only: a closed connection leaves the
  // list as its serve loop unwinds, and stop() after that must not touch
  // the dead socket again.
  Net n;
  TServer server(n.net, *n.b, 8, echo_processor(*n.b),
                 {.kind = ServerKind::kThreaded});
  server.start();
  size_t open_while_connected = 0;
  n.sim.spawn([](Net& n, TServer& server, size_t& open) -> Task<void> {
    {
      SimSocket* c1 = co_await n.net.connect(*n.a, *n.b, 8);
      SocketRpcClient rpc1(c1);
      co_await rpc1.call(view_of("one"));
      SimSocket* c2 = co_await n.net.connect(*n.a, *n.b, 8);
      SocketRpcClient rpc2(c2);
      co_await rpc2.call(view_of("two"));
      open = server.open_connections();
      rpc1.close();
      rpc2.close();
    }
    // Let both serve loops observe EOF and unregister.
    co_await n.sim.sleep(1ms);
    EXPECT_EQ(server.open_connections(), 0u);
    server.stop();
    server.stop();  // second stop over the same (empty) set: no-op
  }(n, server, open_while_connected));
  n.sim.run();
  EXPECT_EQ(open_while_connected, 2u);
  EXPECT_EQ(server.requests_served(), 2u);
  EXPECT_EQ(n.sim.live_tasks(), 0u);
}

TEST(TServer, StopClosesLiveConnections) {
  Net n;
  TServer server(n.net, *n.b, 9, echo_processor(*n.b),
                 {.kind = ServerKind::kThreaded});
  server.start();
  bool server_hung_up = false;
  n.sim.spawn([](Net& n, TServer& server, bool& hung_up) -> Task<void> {
    SimSocket* c = co_await n.net.connect(*n.a, *n.b, 9);
    SocketRpcClient rpc(c);
    co_await rpc.call(view_of("hello"));
    EXPECT_EQ(server.open_connections(), 1u);
    server.stop();
    bool threw = false;
    try {
      co_await rpc.call(view_of("after-stop"));
    } catch (const TTransportException&) {
      threw = true;
    }
    hung_up = threw;
    rpc.close();
  }(n, server, server_hung_up));
  n.sim.run();
  EXPECT_TRUE(server_hung_up);
  EXPECT_EQ(n.sim.live_tasks(), 0u);
}

TEST(TRdma, SocketCompatibleProgrammingModel) {
  // The paper's key TRdma property: write / flush / read like TSocket.
  Simulator sim;
  verbs::Fabric fabric(sim);
  verbs::Node* cl = fabric.add_node();
  verbs::Node* sv = fabric.add_node();
  TServerRdma server(*sv, [sv](proto::View req) -> Task<proto::Buffer> {
    co_await sv->cpu().compute(300ns);
    std::string s(reinterpret_cast<const char*>(req.data()), req.size());
    s = "echo:" + s;
    auto* p = reinterpret_cast<const std::byte*>(s.data());
    co_return proto::Buffer(p, p + s.size());
  });
  TRdmaEndPoint* ep =
      server.accept(*cl, proto::ProtocolKind::kDirectWriteImm, {});
  std::string got;
  sim.spawn([](TRdmaEndPoint* ep, std::string& got,
               TServerRdma& server) -> Task<void> {
    TRdma t(*ep);
    t.set_response_size_hint(64);
    std::string req = "trdma";
    t.write(view_of(req));
    co_await t.flush();
    std::byte buf[64];
    size_t k = co_await t.read(buf, sizeof buf);
    got.assign(reinterpret_cast<char*>(buf), k);
    server.stop();
  }(ep, got, server));
  sim.run();
  EXPECT_EQ(got, "echo:trdma");
  EXPECT_EQ(sim.live_tasks(), 0u);
}

TEST(TRdma, WorksOverEveryProtocolKind) {
  for (auto kind : {proto::ProtocolKind::kEagerSendRecv,
                    proto::ProtocolKind::kWriteRndv,
                    proto::ProtocolKind::kRfp,
                    proto::ProtocolKind::kHybridEagerRndv}) {
    Simulator sim;
    verbs::Fabric fabric(sim);
    verbs::Node* cl = fabric.add_node();
    verbs::Node* sv = fabric.add_node();
    TServerRdma server(*sv, [](proto::View req) -> Task<proto::Buffer> {
      co_return proto::Buffer(req.begin(), req.end());
    });
    TRdmaEndPoint* ep = server.accept(*cl, kind, {});
    bool ok = false;
    sim.spawn([](TRdmaEndPoint* ep, bool& ok, TServerRdma& srv)
                  -> Task<void> {
      TRdma t(*ep);
      t.write(view_of("abc"));
      t.set_response_size_hint(3);
      co_await t.flush();
      std::byte buf[8];
      size_t k = co_await t.read(buf, 8);
      ok = (k == 3 && std::memcmp(buf, "abc", 3) == 0);
      srv.stop();
    }(ep, ok, server));
    sim.run();
    EXPECT_TRUE(ok) << proto::to_string(kind);
  }
}

TEST(TRdmaTransport, HandshakeEstablishesEndpointOverTcp) {
  // The paper's TRdmaTransport: out-of-band TCP exchange, then RDMA.
  Simulator sim;
  verbs::Fabric fabric(sim);
  SocketNet net(fabric);
  verbs::Node* cl = fabric.add_node();
  verbs::Node* sv = fabric.add_node();
  TRdmaTransport transport(net, *sv, 7000,
                           [](proto::View req) -> Task<proto::Buffer> {
                             co_return proto::Buffer(req.begin(), req.end());
                           });
  std::string got;
  sim::Time handshake_done{};
  sim.spawn([](Simulator& sim, TRdmaTransport& transport, verbs::Node* cl,
               std::string& got, sim::Time& t) -> Task<void> {
    proto::ChannelConfig cfg;
    TRdmaEndPoint* ep = co_await transport.connect(
        *cl, proto::ProtocolKind::kDirectWriteImm, cfg);
    t = sim.now();  // handshake cost real virtual time
    proto::Buffer req = proto::to_buffer("post-handshake");
    proto::Buffer resp = (co_await ep->channel().call(req, 64)).value();
    got = std::string(proto::as_string(resp));
    transport.stop();
  }(sim, transport, cl, got, handshake_done));
  sim.run();
  EXPECT_EQ(got, "post-handshake");
  EXPECT_EQ(transport.connections(), 1u);
  // TCP connect (30us handshake) + request/reply round trip.
  EXPECT_GT(handshake_done, 40us);
}

TEST(TRdmaTransport, ManyClientsHandshakeConcurrently) {
  Simulator sim;
  verbs::Fabric fabric(sim);
  SocketNet net(fabric);
  verbs::Node* sv = fabric.add_node();
  TRdmaTransport transport(net, *sv, 7001,
                           [](proto::View req) -> Task<proto::Buffer> {
                             co_return proto::Buffer(req.begin(), req.end());
                           });
  int ok = 0;
  sim::WaitGroup wg(sim);
  wg.add(6);
  for (int c = 0; c < 6; ++c) {
    verbs::Node* cl = fabric.add_node();
    sim.spawn([](TRdmaTransport& transport, verbs::Node* cl, int c, int& ok,
                 sim::WaitGroup& wg) -> Task<void> {
      TRdmaEndPoint* ep = co_await transport.connect(
          *cl, proto::ProtocolKind::kEagerSendRecv, proto::ChannelConfig{});
      std::string msg = "client-" + std::to_string(c);
      proto::Buffer resp = (co_await ep->channel().call(
          proto::to_buffer(msg), 64)).value();
      if (proto::as_string(resp) == msg) ++ok;
      wg.done();
    }(transport, cl, c, ok, wg));
  }
  sim.spawn([](sim::WaitGroup& wg, TRdmaTransport& t) -> Task<void> {
    co_await wg.wait();
    t.stop();
  }(wg, transport));
  sim.run();
  EXPECT_EQ(ok, 6);
  EXPECT_EQ(transport.connections(), 6u);
}

}  // namespace
}  // namespace hatrpc::thrift
