// HatKV tests: the generated service over mdblite through the full engine
// — GET/PUT/MULTIGET/MULTIPUT correctness, hint-derived backend tuning
// (reader table from the concurrency hint, sync strategy from the perf
// goal), and concurrent multi-client operation.
#include <gtest/gtest.h>

#include "kv/hatkv.h"

namespace hatrpc::kv {
namespace {

using sim::Simulator;
using sim::Task;
using namespace std::chrono_literals;

struct KvCluster {
  Simulator sim;
  verbs::Fabric fabric{sim};
  verbs::Node* server_node = fabric.add_node();
  HatKVServer server{*server_node};

  verbs::Node* add_client() { return fabric.add_node(); }
};

TEST(HatKVConfigTest, DerivedFromHints) {
  HatKVConfig cfg = HatKVConfig::from_hints(hatkv::HatKV_hints());
  // concurrency=128 -> reader table sized beyond LMDB's 126 default.
  EXPECT_EQ(cfg.max_readers, 136u);
  // Service goal is throughput -> group commits off the critical path.
  EXPECT_FALSE(cfg.sync_commits);
}

TEST(HatKVConfigTest, LatencyGoalForcesSyncCommits) {
  hint::ServiceHints h;
  h.service().add(hint::Side::kShared, hint::Key::kPerfGoal,
                  hint::parse_value(hint::Key::kPerfGoal, "latency"));
  EXPECT_TRUE(HatKVConfig::from_hints(h).sync_commits);
}

TEST(HatKV, PutGetRoundTrip) {
  KvCluster c;
  core::HatConnection conn(*c.add_client(), c.server.server());
  hatkv::HatKVClient client(conn);
  std::string got;
  c.sim.spawn([](hatkv::HatKVClient& client, std::string& got,
                 HatKVServer& server) -> Task<void> {
    co_await client.Put("user42", "profile-data");
    got = co_await client.Get("user42");
    server.stop();
  }(client, got, c.server));
  c.sim.run();
  EXPECT_EQ(got, "profile-data");
  EXPECT_EQ(c.sim.live_tasks(), 0u);
}

TEST(HatKV, MissingKeyReturnsEmpty) {
  KvCluster c;
  core::HatConnection conn(*c.add_client(), c.server.server());
  hatkv::HatKVClient client(conn);
  std::string got = "sentinel";
  c.sim.spawn([](hatkv::HatKVClient& client, std::string& got,
                 HatKVServer& server) -> Task<void> {
    got = co_await client.Get("never-stored");
    server.stop();
  }(client, got, c.server));
  c.sim.run();
  EXPECT_EQ(got, "");
}

TEST(HatKV, MultiPutMultiGetBatch) {
  KvCluster c;
  core::HatConnection conn(*c.add_client(), c.server.server());
  hatkv::HatKVClient client(conn);
  std::vector<std::string> got;
  c.sim.spawn([](hatkv::HatKVClient& client, std::vector<std::string>& got,
                 HatKVServer& server) -> Task<void> {
    std::vector<hatkv::KVPair> pairs;
    std::vector<std::string> keys;
    for (int i = 0; i < 10; ++i) {
      hatkv::KVPair kv;
      kv.key = "batch" + std::to_string(i);
      kv.value = std::string(100, static_cast<char>('a' + i));
      keys.push_back(kv.key);
      pairs.push_back(std::move(kv));
    }
    co_await client.MultiPut(pairs);
    got = co_await client.MultiGet(keys);
    server.stop();
  }(client, got, c.server));
  c.sim.run();
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(got[i], std::string(100, static_cast<char>('a' + i)));
}

TEST(HatKV, ConcurrentClientsStayConsistent) {
  KvCluster c;
  constexpr int kClients = 8;
  constexpr int kOps = 20;
  int ok = 0;
  std::vector<std::unique_ptr<core::HatConnection>> conns;
  for (int ci = 0; ci < kClients; ++ci) {
    conns.push_back(std::make_unique<core::HatConnection>(
        *c.add_client(), c.server.server()));
    c.sim.spawn([](core::HatConnection& conn, int ci, int& ok) -> Task<void> {
      hatkv::HatKVClient client(conn);
      for (int i = 0; i < kOps; ++i) {
        std::string key =
            "c" + std::to_string(ci) + "-k" + std::to_string(i);
        std::string value = "v" + std::to_string(ci * 1000 + i);
        co_await client.Put(key, value);
        std::string got = co_await client.Get(key);
        if (got == value) ++ok;
      }
    }(*conns[static_cast<size_t>(ci)], ci, ok));
  }
  c.sim.run_until(sim::Time(5s));
  EXPECT_EQ(ok, kClients * kOps);
  c.server.stop();
  EXPECT_EQ(c.server.handler().env().stats().commits,
            static_cast<uint64_t>(kClients * kOps));
}

TEST(HatKV, HintsChooseDistinctPlansPerFunction) {
  KvCluster c;
  core::HatConnection conn(*c.add_client(), c.server.server());
  // GET: 1KB payload @128 concurrency, throughput -> WriteIMM + event.
  const hint::Plan& get = conn.plan_for("Get");
  EXPECT_EQ(get.protocol, proto::ProtocolKind::kDirectWriteImm);
  EXPECT_EQ(get.client_poll, sim::PollMode::kEvent);
  // MULTIGET: 10KB payload at over-subscription -> still the one-WQE
  // path with scalable event polling (RFP only pays off at >=64KB).
  const hint::Plan& mget = conn.plan_for("MultiGet");
  EXPECT_EQ(mget.protocol, proto::ProtocolKind::kDirectWriteImm);
  EXPECT_EQ(mget.client_poll, sim::PollMode::kEvent);
  EXPECT_EQ(mget.expected_payload, 10240u);
  c.server.stop();
}

TEST(HatKV, SyncCommitsCostMoreTime) {
  auto run = [](bool sync) {
    Simulator sim;
    verbs::Fabric fabric(sim);
    verbs::Node* sn = fabric.add_node();
    HatKVConfig cfg = HatKVConfig::from_hints(hatkv::HatKV_hints());
    cfg.sync_commits = sync;
    HatKVServer server(*sn, {}, cfg);
    verbs::Node* cn = fabric.add_node();
    core::HatConnection conn(*cn, server.server());
    hatkv::HatKVClient client(conn);
    sim::Time done{};
    sim.spawn([](hatkv::HatKVClient& client, HatKVServer& server,
                 Simulator& sim, sim::Time& done) -> Task<void> {
      for (int i = 0; i < 50; ++i)
        co_await client.Put("k" + std::to_string(i), std::string(1000, 'v'));
      done = sim.now();
      server.stop();
    }(client, server, sim, done));
    sim.run();
    return done;
  };
  EXPECT_GT(run(true), run(false));  // durability is paid on the wire time
}

}  // namespace
}  // namespace hatrpc::kv
