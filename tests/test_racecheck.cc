// RaceCheck happens-before analyzer tests: the zero-perturbation guarantee
// (enabling the checker changes no trace), seeded tiebreak-shuffle
// determinism, one deliberate violation per detector class (unsynchronized
// write/write, use-after-retire, release discipline), the sync edges that
// must SUPPRESS reports (Event, lease handoff, run barrier), abort-mode
// throw semantics, and the counter mirror.
//
// Every test pins the checker mode explicitly (set_mode) so the suite
// behaves identically whether or not the RACECHECK env var is set — CI runs
// the chaos/cluster suites under RACECHECK=abort separately.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "proto/buffer_pool.h"
#include "proto/channel.h"
#include "proto/eager_pipe.h"
#include "sim/racecheck.h"
#include "sim/sync.h"
#include "verbs/endpoint.h"
#include "verbs/verbs.h"

namespace hatrpc::sim {
namespace {

using proto::Buffer;
using proto::View;
using namespace std::chrono_literals;

using Mode = RaceCheck::Mode;

// ---------------------------------------------------------------------------
// Zero perturbation: the checker must never move virtual time.
// ---------------------------------------------------------------------------

/// A workload with real concurrency (channel echo + timers + sync), whose
/// observable trace is every resume timestamp a task sees.
std::vector<Time> trace_workload(Mode mode, uint64_t tiebreak) {
  Simulator sim;
  sim.racecheck().set_mode(mode);
  sim.set_tiebreak_seed(tiebreak);
  verbs::Fabric fabric(sim);
  verbs::Node* cl = fabric.add_node();
  verbs::Node* sv = fabric.add_node();
  auto ch = proto::make_channel(
      proto::ProtocolKind::kEagerSendRecv, *cl, *sv,
      [sv](View req) -> Task<Buffer> {
        co_await sv->cpu().compute(200ns);
        co_return Buffer(req.begin(), req.end());
      },
      proto::ChannelConfig{.window = 2});

  std::vector<Time> trace;
  WaitGroup wg(sim);
  for (int t = 0; t < 4; ++t) {
    wg.add(1);
    sim.spawn([](Simulator& sim, proto::RpcChannel& ch, int t,
                 std::vector<Time>& trace, WaitGroup& wg) -> Task<void> {
      co_await sim.sleep(std::chrono::nanoseconds(t * 100));
      trace.push_back(sim.now());
      Buffer req(32 + t, std::byte{static_cast<unsigned char>(t)});
      Buffer resp = (co_await ch.call(req)).value();
      trace.push_back(sim.now());
      trace.push_back(Time(std::chrono::nanoseconds(
          static_cast<int64_t>(resp.size()))));
      wg.done();
    }(sim, *ch, t, trace, wg));
  }
  sim.spawn([](WaitGroup& wg, proto::RpcChannel& ch) -> Task<void> {
    co_await wg.wait();
    ch.shutdown();
  }(wg, *ch));
  sim.run();
  return trace;
}

TEST(RaceCheckOff, EnablingTheCheckerChangesNoTrace) {
  const std::vector<Time> off = trace_workload(Mode::kOff, 0);
  const std::vector<Time> record = trace_workload(Mode::kRecord, 0);
  const std::vector<Time> abort_m = trace_workload(Mode::kAbort, 0);
  EXPECT_EQ(off, record);
  EXPECT_EQ(off, abort_m);
}

TEST(RaceCheckOff, OffModeRecordsNothing) {
  Simulator sim;
  sim.racecheck().set_mode(Mode::kOff);
  int loc = 0;
  sim.rc_write(&loc, 0, "test.loc", "a");
  sim.rc_write(&loc, 0, "test.loc", "b");  // would race if enabled
  EXPECT_EQ(sim.racecheck().total(), 0u);
}

// ---------------------------------------------------------------------------
// Tiebreak perturbation: seeded, deterministic, off by default.
// ---------------------------------------------------------------------------

std::vector<int> dispatch_order(uint64_t seed) {
  Simulator sim;
  sim.set_tiebreak_seed(seed);
  std::vector<int> order;
  for (int t = 0; t < 8; ++t)
    sim.spawn([](Simulator& sim, std::vector<int>& order,
                 int t) -> Task<void> {
      // Spawn runs eagerly to the first suspension; the yield puts all 8
      // resumptions into one same-timestamp dispatch batch.
      co_await sim.yield();
      order.push_back(t);
    }(sim, order, t));
  sim.run();
  return order;
}

TEST(RaceCheckTiebreak, SeedZeroKeepsSubmissionOrder) {
  EXPECT_EQ(dispatch_order(0), (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(RaceCheckTiebreak, SameSeedSameOrderDifferentSeedPerturbs) {
  const std::vector<int> a = dispatch_order(7);
  EXPECT_EQ(a, dispatch_order(7)) << "a seed must be reproducible";
  EXPECT_NE(a, dispatch_order(0)) << "seed 7 should shuffle an 8-task batch";
  EXPECT_NE(dispatch_order(13), dispatch_order(0));
}

// ---------------------------------------------------------------------------
// Race detection: unsynchronized conflicting accesses.
// ---------------------------------------------------------------------------

TEST(RaceCheckRace, UnorderedPoolSlotWritesAreReported) {
  Simulator sim;
  sim.racecheck().set_mode(Mode::kRecord);
  sim.set_tiebreak_seed(0);  // pin: the assertions name who ran first
  verbs::Fabric fabric(sim);
  verbs::Node* node = fabric.add_node();
  proto::BufferPool pool(*node, 256, 4);
  proto::BufferPool::Lease lease = pool.acquire();

  // Two sibling tasks fill the SAME lease with no ordering between them —
  // the bug class where a serialization buffer is shared across calls.
  for (int t = 0; t < 2; ++t)
    sim.spawn([](Simulator& sim, proto::BufferPool::Lease& l,
                 int t) -> Task<void> {
      co_await sim.yield();  // run the write in a dispatched segment
      l.annotate_write(t == 0 ? "writer-a" : "writer-b");
    }(sim, lease, t));
  sim.run();

  ASSERT_EQ(sim.racecheck().count(RaceKind::kRace), 1u);
  const RaceReport& r = sim.racecheck().reports()[0];
  EXPECT_EQ(r.kind, RaceKind::kRace);
  EXPECT_NE(r.object.find("BufferPool.slot"), std::string::npos) << r.str();
  // Both provenances must be present and name the conflicting sites.
  ASSERT_TRUE(r.prev.valid());
  ASSERT_TRUE(r.cur.valid());
  EXPECT_STREQ(r.prev.site, "writer-a");
  EXPECT_STREQ(r.cur.site, "writer-b");
  EXPECT_NE(r.prev.chain, r.cur.chain);
}

TEST(RaceCheckRace, EventEdgeOrdersTheSameAccessPattern) {
  // The same two writes, but ordered through an Event: no report.
  Simulator sim;
  sim.racecheck().set_mode(Mode::kAbort);  // abort: a false positive throws
  int loc = 0;
  Event ready(sim);
  sim.spawn([](Simulator& sim, int& loc, Event& ready) -> Task<void> {
    co_await sim.yield();  // suspend first: the waiter below must block
    sim.rc_write(&loc, 0, "test.loc", "first");
    ready.set();
  }(sim, loc, ready));
  sim.spawn([](Simulator& sim, int& loc, Event& ready) -> Task<void> {
    co_await ready.wait();
    sim.rc_write(&loc, 0, "test.loc", "second");
  }(sim, loc, ready));
  sim.run();
  EXPECT_EQ(sim.racecheck().total(), 0u);
}

TEST(RaceCheckRace, RunBarrierOrdersMainAfterEverySegment) {
  Simulator sim;
  sim.racecheck().set_mode(Mode::kAbort);
  int loc = 0;
  sim.spawn([](Simulator& sim, int& loc) -> Task<void> {
    co_await sim.yield();
    sim.rc_write(&loc, 0, "test.loc", "in-task");
  }(sim, loc));
  sim.run();
  // Code after run() is ordered after every segment that ran.
  sim.rc_write(&loc, 0, "test.loc", "after-run");
  EXPECT_EQ(sim.racecheck().total(), 0u);
}

TEST(RaceCheckRace, RelaxedUpdatesNeverConflictWithEachOther) {
  Simulator sim;
  sim.racecheck().set_mode(Mode::kAbort);
  uint64_t gauge = 0;
  for (int t = 0; t < 3; ++t)
    sim.spawn([](Simulator& sim, uint64_t& gauge) -> Task<void> {
      co_await sim.yield();
      sim.rc_update(&gauge, 0, "test.gauge", RC_HERE);
    }(sim, gauge));
  sim.run();
  EXPECT_EQ(sim.racecheck().total(), 0u);

  // ...but a strict access against an unordered update DOES conflict.
  sim.racecheck().set_mode(Mode::kRecord);
  uint64_t gauge2 = 0;
  for (int t = 0; t < 2; ++t)
    sim.spawn([](Simulator& sim, uint64_t& gauge2, int t) -> Task<void> {
      co_await sim.yield();
      if (t == 0)
        sim.rc_update(&gauge2, 0, "test.gauge", "updater");
      else
        sim.rc_write(&gauge2, 0, "test.gauge", "strict-writer");
    }(sim, gauge2, t));
  sim.run();
  EXPECT_EQ(sim.racecheck().count(RaceKind::kRace), 1u);
}

// ---------------------------------------------------------------------------
// Lifetime detection: use-after-retire and release discipline.
// ---------------------------------------------------------------------------

TEST(RaceCheckLifetime, AccessAfterRetireCarriesTheRetireProvenance) {
  Simulator sim;
  sim.racecheck().set_mode(Mode::kRecord);
  int epoch = 0;
  sim.spawn([](Simulator& sim, int& epoch) -> Task<void> {
    sim.rc_read(&epoch, 0, "test.epoch", "legal-use");
    sim.rc_retire(&epoch, 0, "test.epoch", "reaper");
    sim.rc_read(&epoch, 0, "test.epoch", "use-after-reap");
    co_return;
  }(sim, epoch));
  sim.run();

  ASSERT_EQ(sim.racecheck().count(RaceKind::kLifetime), 1u);
  const RaceReport& r = sim.racecheck().reports()[0];
  EXPECT_STREQ(r.prev.site, "reaper");
  EXPECT_STREQ(r.cur.site, "use-after-reap");
}

TEST(RaceCheckLifetime, ReviveStartsACleanLifetime) {
  Simulator sim;
  sim.racecheck().set_mode(Mode::kAbort);
  int slot = 0;
  sim.spawn([](Simulator& sim, int& slot) -> Task<void> {
    sim.rc_write(&slot, 0, "test.slot", "first-lease");
    sim.rc_retire(&slot, 0, "test.slot", "release");
    sim.rc_revive(&slot, 0);  // re-leased: a new object
    sim.rc_write(&slot, 0, "test.slot", "second-lease");
    co_return;
  }(sim, slot));
  sim.run();
  EXPECT_EQ(sim.racecheck().total(), 0u);
}

TEST(RaceCheckLifetime, PoolLeaseHandoffAcrossTasksIsOrdered) {
  // Release in one task, re-acquire in another with no other sync: the
  // keyed release/acquire edge must order the handoff (no false race).
  Simulator sim;
  sim.racecheck().set_mode(Mode::kAbort);
  verbs::Fabric fabric(sim);
  verbs::Node* node = fabric.add_node();
  proto::BufferPool pool(*node, 256, 1);  // one block: forced reuse
  Event released(sim);
  sim.spawn([](Simulator& sim, proto::BufferPool& pool,
               Event& released) -> Task<void> {
    co_await sim.yield();  // suspend first: the second task must block
    proto::BufferPool::Lease l = pool.acquire();
    l.annotate_write("holder-a");
    l.release();
    released.set();
  }(sim, pool, released));
  sim.spawn([](proto::BufferPool& pool, Event& released) -> Task<void> {
    co_await released.wait();
    proto::BufferPool::Lease l = pool.acquire();
    l.annotate_write("holder-b");
  }(pool, released));
  sim.run();
  EXPECT_EQ(sim.racecheck().total(), 0u);
}

TEST(RaceCheckLifetime, EagerRecvSlotDoubleReleaseIsANoOpAndDiagnosed) {
  Simulator sim;
  sim.racecheck().set_mode(Mode::kRecord);
  verbs::Fabric fabric(sim);
  verbs::Node* a = fabric.add_node();
  verbs::Node* b = fabric.add_node();
  auto aep = verbs::make_endpoint(*a, PollMode::kBusy);
  auto bep = verbs::make_endpoint(*b, PollMode::kBusy);
  verbs::connect(aep, bep);
  proto::ChannelConfig cfg;
  cfg.zero_copy = true;
  cfg.eager_slots = 4;
  proto::ChannelStats stats;
  proto::EagerPipe pipe(aep, bep, cfg, &stats, nullptr);

  struct Out {
    bool in_place = false;
    Buffer first, second;
  } out;
  sim.spawn([](proto::EagerPipe& pipe, Out& out) -> Task<void> {
    Buffer msg(64, std::byte{0xaa});
    co_await pipe.send_zc(msg);
    auto m1 = co_await pipe.recv_zc();
    out.in_place = m1 && m1->in_place();
    out.first = Buffer(m1->bytes().begin(), m1->bytes().end());
    const uint32_t slot = m1->slot;
    pipe.release(slot);
    pipe.release(slot);  // double release: must not repost twice

    // The ring still works: the slot serves exactly one more message.
    Buffer msg2(64, std::byte{0xbb});
    co_await pipe.send_zc(msg2);
    auto m2 = co_await pipe.recv_zc();
    out.second = Buffer(m2->bytes().begin(), m2->bytes().end());
    if (m2 && m2->in_place()) pipe.release(m2->slot);
  }(pipe, out));
  sim.run();

  EXPECT_TRUE(out.in_place);
  EXPECT_EQ(out.first, Buffer(64, std::byte{0xaa}));
  EXPECT_EQ(out.second, Buffer(64, std::byte{0xbb}));
  ASSERT_EQ(sim.racecheck().count(RaceKind::kLifetime), 1u);
  EXPECT_NE(sim.racecheck().reports()[0].detail.find("not leased"),
            std::string::npos);
}

TEST(RaceCheckLifetime, LeasedReplyDoubleReleaseCallsBackOnce) {
  // The public lease wrapper is idempotent on its own — the EagerPipe
  // guard is the backstop for the raw slot path, not the primary defense.
  int releases = 0;
  Buffer bytes(8, std::byte{0x5a});
  {
    proto::LeasedReply r(View(bytes), [&releases] { ++releases; });
    EXPECT_TRUE(r.in_place());
    r.release();
    r.release();
    EXPECT_EQ(releases, 1);
  }  // dtor must not release again
  EXPECT_EQ(releases, 1);
}

// ---------------------------------------------------------------------------
// Modes: abort throws at the violation; record counts and mirrors.
// ---------------------------------------------------------------------------

TEST(RaceCheckMode, AbortThrowsRaceViolationOutOfRun) {
  Simulator sim;
  sim.racecheck().set_mode(Mode::kAbort);
  int loc = 0;
  for (int t = 0; t < 2; ++t)
    sim.spawn([](Simulator& sim, int& loc, int t) -> Task<void> {
      co_await sim.yield();
      sim.rc_write(&loc, 0, "test.loc", t == 0 ? "a" : "b");
    }(sim, loc, t));
  EXPECT_THROW(sim.run(), RaceViolation);
  EXPECT_EQ(sim.racecheck().total(), 1u);
}

TEST(RaceCheckMode, TolerateScopeRecordsWithoutThrowing) {
  Simulator sim;
  sim.racecheck().set_mode(Mode::kAbort);
  int loc = 0;
  {
    RaceCheck::Tolerate scope(sim.racecheck());
    sim.rc_retire(&loc, 0, "test.loc", "retire");
    sim.rc_read(&loc, 0, "test.loc", "tolerated-use");
  }
  EXPECT_EQ(sim.racecheck().count(RaceKind::kLifetime), 1u);
}

TEST(RaceCheckMode, ReportsMirrorIntoTheRaceReportsCounter) {
  Simulator sim;
  sim.racecheck().set_mode(Mode::kRecord);
  verbs::Fabric fabric(sim);  // binds the mirror to node 0's counter slot
  fabric.add_node();
  int loc = 0;
  sim.rc_retire(&loc, 0, "test.loc", "retire");
  sim.rc_read(&loc, 0, "test.loc", "use");
  EXPECT_EQ(sim.racecheck().total(), 1u);
  EXPECT_EQ(fabric.obs().counters.node(0).get(obs::Ctr::kRaceReports), 1u);
}

TEST(RaceCheckMode, CleanChannelWorkloadProducesNoReports) {
  // End-to-end sanity: a real windowed RPC workload (the code the checker
  // instruments for production use) runs report-free under abort.
  EXPECT_NO_THROW({
    const std::vector<Time> t = trace_workload(Mode::kAbort, 0);
    EXPECT_FALSE(t.empty());
  });
}

TEST(RaceCheckMode, CleanWorkloadStaysReportFreeUnderPerturbation) {
  for (uint64_t seed : {1ull, 2ull, 3ull})
    EXPECT_NO_THROW(trace_workload(Mode::kAbort, seed))
        << "seed " << seed;
}

}  // namespace
}  // namespace hatrpc::sim
