// Hint-scheme tests: key/value validation, the four-step override chain
// (function side-specific > function shared > service side-specific >
// service shared), and the Figure-6 selection algorithm across the whole
// (goal x subscription x payload) design space.
#include <gtest/gtest.h>

#include "hint/selection.h"

namespace hatrpc::hint {
namespace {

using proto::ProtocolKind;
using sim::PollMode;

// ---------------------------------------------------------------------------
// Parsing & validation (the compiler's "check" step).
// ---------------------------------------------------------------------------

TEST(HintParse, KnownKeys) {
  EXPECT_EQ(parse_key("perf_goal"), Key::kPerfGoal);
  EXPECT_EQ(parse_key("CONCURRENCY"), Key::kConcurrency);
  EXPECT_EQ(parse_key("payload_size"), Key::kPayloadSize);
  EXPECT_EQ(parse_key("numa_binding"), Key::kNumaBinding);
  EXPECT_EQ(parse_key("transport"), Key::kTransport);
  EXPECT_EQ(parse_key("polling"), Key::kPolling);
  EXPECT_EQ(parse_key("priority"), Key::kPriority);
  EXPECT_EQ(parse_key("bogus_key"), std::nullopt);
}

TEST(HintParse, PerfGoalValues) {
  EXPECT_EQ(parse_value(Key::kPerfGoal, "latency").goal, PerfGoal::kLatency);
  EXPECT_EQ(parse_value(Key::kPerfGoal, "THROUGHPUT").goal,
            PerfGoal::kThroughput);
  EXPECT_EQ(parse_value(Key::kPerfGoal, "res_util").goal, PerfGoal::kResUtil);
  EXPECT_THROW(parse_value(Key::kPerfGoal, "speed"), HintError);
}

TEST(HintParse, NumericValuesWithSuffixes) {
  EXPECT_EQ(parse_value(Key::kPayloadSize, "1024").num, 1024);
  EXPECT_EQ(parse_value(Key::kPayloadSize, "128k").num, 128 * 1024);
  EXPECT_EQ(parse_value(Key::kPayloadSize, "2M").num, 2 * 1024 * 1024);
  EXPECT_EQ(parse_value(Key::kConcurrency, "512").num, 512);
  EXPECT_THROW(parse_value(Key::kConcurrency, "0"), HintError);
  EXPECT_THROW(parse_value(Key::kConcurrency, "-3"), HintError);
  EXPECT_THROW(parse_value(Key::kPayloadSize, "12x4"), HintError);
}

TEST(HintParse, EnumValues) {
  EXPECT_TRUE(parse_value(Key::kNumaBinding, "true").flag);
  EXPECT_FALSE(parse_value(Key::kNumaBinding, "false").flag);
  EXPECT_THROW(parse_value(Key::kNumaBinding, "yes"), HintError);
  EXPECT_EQ(parse_value(Key::kTransport, "tcp").transport, Transport::kTcp);
  EXPECT_THROW(parse_value(Key::kTransport, "udp"), HintError);
  EXPECT_TRUE(parse_value(Key::kPolling, "busy").flag);
  EXPECT_FALSE(parse_value(Key::kPolling, "event").flag);
  EXPECT_EQ(parse_value(Key::kPriority, "low").priority, Priority::kLow);
}

TEST(HintGroup, RejectsDuplicateKeyInSameGroup) {
  HintGroup g;
  g.add(Side::kShared, Key::kPerfGoal, parse_value(Key::kPerfGoal, "latency"));
  EXPECT_THROW(g.add(Side::kShared, Key::kPerfGoal,
                     parse_value(Key::kPerfGoal, "throughput")),
               HintError);
  // Same key in a different lateral group is fine.
  EXPECT_NO_THROW(g.add(Side::kServer, Key::kPerfGoal,
                        parse_value(Key::kPerfGoal, "throughput")));
}

// ---------------------------------------------------------------------------
// Hierarchical resolution (§4.1).
// ---------------------------------------------------------------------------

ServiceHints make_hierarchy() {
  ServiceHints h;
  h.service().add(Side::kShared, Key::kPerfGoal,
                  parse_value(Key::kPerfGoal, "throughput"));
  h.service().add(Side::kShared, Key::kConcurrency,
                  parse_value(Key::kConcurrency, "128"));
  h.service().add(Side::kServer, Key::kPolling,
                  parse_value(Key::kPolling, "event"));
  h.function("Get").add(Side::kShared, Key::kPerfGoal,
                        parse_value(Key::kPerfGoal, "latency"));
  h.function("Get").add(Side::kClient, Key::kPolling,
                        parse_value(Key::kPolling, "busy"));
  h.function("Put").add(Side::kShared, Key::kPayloadSize,
                        parse_value(Key::kPayloadSize, "1024"));
  return h;
}

TEST(HintResolution, FunctionOverridesService) {
  ServiceHints h = make_hierarchy();
  const Value* v = h.lookup("Get", Key::kPerfGoal, Perspective::kClient);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->goal, PerfGoal::kLatency);  // function beats service
  v = h.lookup("Put", Key::kPerfGoal, Perspective::kClient);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->goal, PerfGoal::kThroughput);  // inherited from service
}

TEST(HintResolution, ServiceHintsVisibleToAllFunctions) {
  ServiceHints h = make_hierarchy();
  for (const char* fn : {"Get", "Put", "Unlisted"}) {
    const Value* v = h.lookup(fn, Key::kConcurrency, Perspective::kServer);
    ASSERT_NE(v, nullptr) << fn;
    EXPECT_EQ(v->num, 128);
  }
}

TEST(HintResolution, SideSpecificOverridesSharedAtSameLevel) {
  ServiceHints h = make_hierarchy();
  // Client asks for polling on Get: function c_hint (busy) wins.
  const Value* vc = h.lookup("Get", Key::kPolling, Perspective::kClient);
  ASSERT_NE(vc, nullptr);
  EXPECT_TRUE(vc->flag);
  // Server asks: no function-level server hint -> service s_hint (event).
  const Value* vs = h.lookup("Get", Key::kPolling, Perspective::kServer);
  ASSERT_NE(vs, nullptr);
  EXPECT_FALSE(vs->flag);
}

TEST(HintResolution, FunctionSharedBeatsServiceSideSpecific) {
  ServiceHints h;
  h.service().add(Side::kClient, Key::kPerfGoal,
                  parse_value(Key::kPerfGoal, "throughput"));
  h.function("F").add(Side::kShared, Key::kPerfGoal,
                      parse_value(Key::kPerfGoal, "latency"));
  const Value* v = h.lookup("F", Key::kPerfGoal, Perspective::kClient);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->goal, PerfGoal::kLatency);
}

TEST(HintResolution, MissingKeyReturnsNull) {
  ServiceHints h = make_hierarchy();
  EXPECT_EQ(h.lookup("Get", Key::kTransport, Perspective::kClient), nullptr);
}

// ---------------------------------------------------------------------------
// Figure-6 selection.
// ---------------------------------------------------------------------------

TEST(Subscription, ClassifiesAgainstTestbedCores) {
  SelectionParams p;
  EXPECT_EQ(classify_subscription(1, p), Subscription::kUnder);
  EXPECT_EQ(classify_subscription(16, p), Subscription::kUnder);
  EXPECT_EQ(classify_subscription(17, p), Subscription::kFull);
  EXPECT_EQ(classify_subscription(28, p), Subscription::kFull);
  EXPECT_EQ(classify_subscription(29, p), Subscription::kOver);
  EXPECT_EQ(classify_subscription(512, p), Subscription::kOver);
}

TEST(Selection, LatencyGoalPicksBusyWriteImm) {
  SelectionParams p;
  for (uint32_t payload : {64u, 512u, 131072u}) {
    Plan plan = select_plan_raw(PerfGoal::kLatency, 1, payload, false, p);
    EXPECT_EQ(plan.protocol, ProtocolKind::kDirectWriteImm);
    EXPECT_EQ(plan.client_poll, PollMode::kBusy);
    EXPECT_EQ(plan.server_poll, PollMode::kBusy);
  }
}

TEST(Selection, ThroughputSmallStaysWriteImmPollingByRegime) {
  SelectionParams p;
  Plan under = select_plan_raw(PerfGoal::kThroughput, 8, 512, false, p);
  EXPECT_EQ(under.protocol, ProtocolKind::kDirectWriteImm);
  EXPECT_EQ(under.client_poll, PollMode::kBusy);
  Plan over = select_plan_raw(PerfGoal::kThroughput, 512, 512, false, p);
  EXPECT_EQ(over.protocol, ProtocolKind::kDirectWriteImm);
  EXPECT_EQ(over.client_poll, PollMode::kEvent);
}

TEST(Selection, ThroughputLargeSwitchesPollingAboveThreshold) {
  // The §5.2 crossover at the concurrency threshold 16: busy polling under
  // it, scalable event polling above it (our characterization keeps
  // Direct-WriteIMM as the protocol in both regimes; see selection.cc).
  SelectionParams p;
  Plan under = select_plan_raw(PerfGoal::kThroughput, 16, 131072, false, p);
  EXPECT_EQ(under.protocol, ProtocolKind::kDirectWriteImm);
  EXPECT_EQ(under.client_poll, PollMode::kBusy);
  Plan over = select_plan_raw(PerfGoal::kThroughput, 17, 131072, false, p);
  EXPECT_EQ(over.protocol, ProtocolKind::kDirectWriteImm);
  EXPECT_EQ(over.client_poll, PollMode::kEvent);
}

TEST(Selection, ResUtilPrefersEagerAndRendezvous) {
  SelectionParams p;
  Plan u_small = select_plan_raw(PerfGoal::kResUtil, 4, 512, false, p);
  EXPECT_EQ(u_small.protocol, ProtocolKind::kDirectWriteImm);
  Plan u_large = select_plan_raw(PerfGoal::kResUtil, 4, 131072, false, p);
  EXPECT_EQ(u_large.protocol, ProtocolKind::kWriteRndv);
  Plan o_small = select_plan_raw(PerfGoal::kResUtil, 100, 512, false, p);
  EXPECT_EQ(o_small.protocol, ProtocolKind::kEagerSendRecv);
  Plan o_large = select_plan_raw(PerfGoal::kResUtil, 100, 131072, false, p);
  EXPECT_EQ(o_large.protocol, ProtocolKind::kWriteRndv);
  // Resource-utilization always frees the CPUs.
  for (const Plan& pl : {u_small, u_large, o_small, o_large}) {
    EXPECT_EQ(pl.client_poll, PollMode::kEvent);
    EXPECT_EQ(pl.server_poll, PollMode::kEvent);
  }
}

TEST(Selection, NumaBindingOnlyUnderSubscription) {
  SelectionParams p;
  EXPECT_TRUE(select_plan_raw(PerfGoal::kLatency, 8, 512, true, p).numa_bind);
  EXPECT_FALSE(
      select_plan_raw(PerfGoal::kLatency, 64, 512, true, p).numa_bind);
  EXPECT_FALSE(
      select_plan_raw(PerfGoal::kLatency, 8, 512, false, p).numa_bind);
}

TEST(Selection, FromHierarchyWithLateralSplit) {
  // Service: throughput @128 clients; server explicitly event-polls while
  // the latency-hinted Get keeps busy polling at the client.
  ServiceHints h = make_hierarchy();
  h.function("Get").add(Side::kShared, Key::kPayloadSize,
                        parse_value(Key::kPayloadSize, "1024"));
  SelectionParams p;
  Plan get = select_plan(h, "Get", p);
  EXPECT_EQ(get.protocol, ProtocolKind::kDirectWriteImm);  // latency goal
  EXPECT_EQ(get.client_poll, PollMode::kBusy);   // c_hint polling=busy
  EXPECT_EQ(get.server_poll, PollMode::kEvent);  // s_hint polling=event
  EXPECT_EQ(get.expected_payload, 1024u);

  Plan put = select_plan(h, "Put", p);  // inherits throughput @128, 1KB
  EXPECT_EQ(put.protocol, ProtocolKind::kDirectWriteImm);
  EXPECT_EQ(put.client_poll, PollMode::kEvent);  // over-subscription
}

TEST(Selection, TransportHintRoutesToTcp) {
  ServiceHints h;
  h.function("Legacy").add(Side::kShared, Key::kTransport,
                           parse_value(Key::kTransport, "tcp"));
  Plan plan = select_plan(h, "Legacy", SelectionParams{});
  EXPECT_EQ(plan.transport, Transport::kTcp);
  EXPECT_EQ(select_plan(h, "Other", SelectionParams{}).transport,
            Transport::kRdma);
}

TEST(Selection, LowPriorityYieldsResources) {
  ServiceHints h;
  h.service().add(Side::kShared, Key::kPerfGoal,
                  parse_value(Key::kPerfGoal, "latency"));
  h.service().add(Side::kShared, Key::kPayloadSize,
                  parse_value(Key::kPayloadSize, "256"));
  h.function("Heartbeat").add(Side::kShared, Key::kPriority,
                              parse_value(Key::kPriority, "low"));
  Plan hb = select_plan(h, "Heartbeat", SelectionParams{});
  EXPECT_EQ(hb.protocol, ProtocolKind::kEagerSendRecv);
  EXPECT_EQ(hb.client_poll, PollMode::kEvent);
  // The important function is untouched: optimization isolation.
  Plan other = select_plan(h, "CriticalOp", SelectionParams{});
  EXPECT_EQ(other.protocol, ProtocolKind::kDirectWriteImm);
  EXPECT_EQ(other.client_poll, PollMode::kBusy);
}

// Property sweep: the whole design space produces valid, stable plans.
class SelectionSweep
    : public ::testing::TestWithParam<std::tuple<int, uint32_t, uint32_t>> {};

TEST_P(SelectionSweep, PlansAreValidAndDeterministic) {
  auto goal = static_cast<PerfGoal>(std::get<0>(GetParam()));
  uint32_t conc = std::get<1>(GetParam());
  uint32_t payload = std::get<2>(GetParam());
  SelectionParams p;
  Plan a = select_plan_raw(goal, conc, payload, true, p);
  Plan b = select_plan_raw(goal, conc, payload, true, p);
  EXPECT_EQ(a, b);
  // Latency goal never event-polls; res_util never busy-polls.
  if (goal == PerfGoal::kLatency)
    EXPECT_EQ(a.client_poll, PollMode::kBusy);
  if (goal == PerfGoal::kResUtil)
    EXPECT_EQ(a.client_poll, PollMode::kEvent);
  // Large payloads under res_util must avoid per-connection max buffers.
  if (goal == PerfGoal::kResUtil && payload > p.small_msg_max)
    EXPECT_TRUE(a.protocol == ProtocolKind::kWriteRndv ||
                a.protocol == ProtocolKind::kReadRndv);
}

INSTANTIATE_TEST_SUITE_P(
    DesignSpace, SelectionSweep,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(1u, 16u, 17u, 28u, 29u, 512u),
                       ::testing::Values(64u, 512u, 4096u, 4097u, 131072u)));

}  // namespace
}  // namespace hatrpc::hint
