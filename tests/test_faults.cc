// Chaos harness: echo and HatKV workloads driven through the reliability
// layer while a seeded FaultPlan drops, corrupts, duplicates and delays
// wire transmissions and kills QPs/nodes/MR registrations at scheduled
// virtual times. The invariants under test:
//   * every call either returns the correct bytes or fails with a typed
//     RpcError — the client NEVER hangs (live_tasks() == 0 after run());
//   * two runs with the same seed produce byte-identical fault traces,
//     identical outcome sequences, and identical event counts;
//   * timeouts + seq-numbered retries are idempotent (server-side replay);
//   * losing one-sided remote access degrades to the eager two-sided path.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "kv/hatkv.h"
#include "proto/reliable.h"

namespace hatrpc {
namespace {

using proto::Buffer;
using proto::ChannelConfig;
using proto::ProtocolKind;
using proto::ReliableChannel;
using proto::RetryPolicy;
using proto::RpcErrc;
using proto::RpcError;
using proto::View;
using sim::Simulator;
using sim::Task;
using verbs::FaultPlan;
using namespace std::chrono_literals;

proto::Handler echo_handler() {
  return [](View req) -> Task<Buffer> {
    co_return Buffer(req.begin(), req.end());
  };
}

std::string payload_for(int i) {
  // Cycle sizes across the eager slot / rendezvous threshold boundaries.
  static constexpr size_t kSizes[] = {16, 100, 2048, 6000};
  std::string s = "call-" + std::to_string(i) + "-";
  while (s.size() < kSizes[i % 4]) s.push_back(static_cast<char>('a' + i % 26));
  return s;
}

constexpr ProtocolKind kAllKinds[] = {
    ProtocolKind::kEagerSendRecv,    ProtocolKind::kDirectWriteSend,
    ProtocolKind::kChainedWriteSend, ProtocolKind::kWriteRndv,
    ProtocolKind::kReadRndv,         ProtocolKind::kDirectWriteImm,
    ProtocolKind::kPilaf,            ProtocolKind::kFarm,
    ProtocolKind::kRfp,              ProtocolKind::kHerd,
    ProtocolKind::kHybridEagerRndv,  ProtocolKind::kArGrpc,
};

struct ChaosResult {
  std::vector<std::string> trace;     // FaultPlan's injection log
  std::vector<std::string> outcomes;  // per call: "ok" / errc / "BAD"
  uint64_t events = 0;
  proto::ReliabilityStats rstats;
};

/// One seeded chaos run: kCalls echo RPCs paced 20us apart under stochastic
/// wire faults plus two scheduled QP kills that straddle the run.
ChaosResult run_chaos(ProtocolKind kind, uint64_t seed) {
  constexpr int kCalls = 24;
  Simulator sim;
  verbs::Fabric fabric{sim};
  // Chaos runs double as a VerbsCheck workout: every WQE posted across QP
  // kills, retries, and replays must still retire with a completion, and the
  // end-of-run audit must come back clean. Record mode keeps the run
  // deterministic (the checker never touches virtual time); an env-selected
  // abort mode is left alone.
  if (!fabric.check().on())
    fabric.check().set_mode(verbs::VerbsCheck::Mode::kRecord);
  verbs::Node* cl = fabric.add_node();
  verbs::Node* sv = fabric.add_node();
  RetryPolicy pol;
  pol.timeout = 500us;
  pol.jitter_seed = seed * 2654435761ULL + 1;
  auto ch = proto::make_reliable_channel(kind, *cl, *sv, echo_handler(),
                                         ChannelConfig{}, pol);
  auto plan = std::make_unique<FaultPlan>(seed);
  plan->profile.drop = 0.05;
  plan->profile.corrupt = 0.03;
  plan->profile.duplicate = 0.05;
  plan->profile.delay = 0.10;
  plan->fail_qp_at(1, sim::Time(200us));
  plan->fail_qp_at(2, sim::Time(450us));
  fabric.set_fault_plan(std::move(plan));

  ChaosResult r;
  sim.spawn([](Simulator& sim, ReliableChannel& ch,
               ChaosResult& r) -> Task<void> {
    for (int i = 0; i < kCalls; ++i) {
      std::string want = payload_for(i);
      proto::CallResult res = co_await ch.call(proto::to_buffer(want));
      if (!res)
        r.outcomes.emplace_back(to_string(res.error().errc()));
      else
        r.outcomes.emplace_back(proto::as_string(*res) == want ? "ok" : "BAD");
      co_await sim.sleep(20us);
    }
    ch.abort();
  }(sim, *ch, r));
  sim.run();
  EXPECT_EQ(sim.live_tasks(), 0u) << "chaos run leaked tasks (hang)";
  verbs::AuditReport audit = fabric.audit();
  EXPECT_TRUE(audit.clean()) << audit.str();
  EXPECT_EQ(audit.violations, 0u) << audit.str();
  r.trace = fabric.fault_plan()->trace();
  r.events = sim.events_processed();
  r.rstats = ch->reliability();
  return r;
}

TEST(Faults, ChaosEchoAllProtocolsNeverHangOrCorrupt) {
  for (ProtocolKind kind : kAllKinds) {
    ChaosResult r = run_chaos(kind, 0xC0FFEE);
    SCOPED_TRACE(std::string("kind=") + std::string(to_string(kind)));
    ASSERT_EQ(r.outcomes.size(), 24u);
    int ok = 0;
    for (const std::string& o : r.outcomes) {
      EXPECT_NE(o, "BAD") << "payload corruption leaked through to the app";
      if (o == "ok") ++ok;
    }
    // The two QP kills can cost calls, but the bulk must get through.
    EXPECT_GE(ok, 12);
    EXPECT_FALSE(r.trace.empty());  // at least the scheduled qp-errors
  }
}

TEST(Faults, SameSeedSameTraceDifferentSeedDiverges) {
  for (ProtocolKind kind : {ProtocolKind::kEagerSendRecv,
                            ProtocolKind::kReadRndv, ProtocolKind::kRfp}) {
    SCOPED_TRACE(std::string("kind=") + std::string(to_string(kind)));
    ChaosResult a = run_chaos(kind, 99);
    ChaosResult b = run_chaos(kind, 99);
    EXPECT_EQ(a.trace, b.trace);
    EXPECT_EQ(a.outcomes, b.outcomes);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.rstats.attempts, b.rstats.attempts);
    EXPECT_EQ(a.rstats.timeouts, b.rstats.timeouts);
    EXPECT_EQ(a.rstats.reconnects, b.rstats.reconnects);
    ChaosResult c = run_chaos(kind, 100);
    EXPECT_NE(a.trace, c.trace);
  }
}

TEST(Faults, TimedOutAttemptIsReplayedNotReexecuted) {
  // The client QP dies mid-call (after the request reached the server,
  // before the response came back). The retry carries the same sequence
  // number, so the server replays its cached response instead of running
  // the handler twice.
  Simulator sim;
  verbs::Fabric fabric{sim};
  verbs::Node* cl = fabric.add_node();
  verbs::Node* sv = fabric.add_node();
  int executed = 0;
  proto::Handler slow = [&sim, &executed](View req) -> Task<Buffer> {
    ++executed;
    co_await sim.sleep(30us);  // response outstanding when the QP dies
    co_return Buffer(req.begin(), req.end());
  };
  RetryPolicy pol;
  pol.backoff_base = 50us;  // retry lands after the handler finished
  auto ch = proto::make_reliable_channel(ProtocolKind::kEagerSendRecv, *cl,
                                         *sv, slow, ChannelConfig{}, pol);
  auto plan = std::make_unique<FaultPlan>(5);
  plan->fail_qp_at(1, sim::Time(25us));  // qp 1 = the client QP
  fabric.set_fault_plan(std::move(plan));
  std::string got;
  sim.spawn([](ReliableChannel& ch, std::string& got) -> Task<void> {
    Buffer resp = (co_await ch.call(proto::to_buffer("needs-retry"))).value();
    got = proto::as_string(resp);
    ch.abort();
  }(*ch, got));
  sim.run();
  EXPECT_EQ(sim.live_tasks(), 0u);
  EXPECT_EQ(got, "needs-retry");
  EXPECT_EQ(executed, 1);
  EXPECT_EQ(ch->server_replays(), 1u);
  EXPECT_EQ(ch->reliability().reconnects, 1u);
}

TEST(Faults, ServerCrashFailsTypedNeverHangs) {
  Simulator sim;
  verbs::Fabric fabric{sim};
  verbs::Node* cl = fabric.add_node();
  verbs::Node* sv = fabric.add_node();
  RetryPolicy pol;
  pol.max_attempts = 3;
  auto ch = proto::make_reliable_channel(ProtocolKind::kEagerSendRecv, *cl,
                                         *sv, echo_handler(),
                                         ChannelConfig{}, pol);
  auto plan = std::make_unique<FaultPlan>(3);
  plan->crash_node_at(sv->id(), sim::Time(100us));
  fabric.set_fault_plan(std::move(plan));
  std::vector<std::string> outcomes;
  sim.spawn([](Simulator& sim, ReliableChannel& ch,
               std::vector<std::string>& outcomes) -> Task<void> {
    Buffer ok = (co_await ch.call(proto::to_buffer("pre-crash"))).value();
    outcomes.emplace_back(proto::as_string(ok));
    co_await sim.sleep(150us);  // the server is dead now
    proto::CallResult post = co_await ch.call(proto::to_buffer("post-crash"));
    outcomes.emplace_back(post ? "unexpected-ok"
                               : to_string(post.error().errc()));
    ch.abort();
  }(sim, *ch, outcomes));
  sim.run();
  EXPECT_EQ(sim.live_tasks(), 0u);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0], "pre-crash");
  EXPECT_EQ(outcomes[1], "retries-exhausted");
  EXPECT_GE(ch->reliability().failures, 3u);
}

TEST(Faults, RevokedExportDegradesToEagerPath) {
  // Server-bypass protocols depend on READ/WRITE access to exported
  // regions; when those are revoked mid-run the reliability layer falls
  // back to two-sided eager and keeps serving.
  for (ProtocolKind kind : {ProtocolKind::kPilaf, ProtocolKind::kFarm,
                            ProtocolKind::kRfp}) {
    SCOPED_TRACE(std::string("kind=") + std::string(to_string(kind)));
    Simulator sim;
    verbs::Fabric fabric{sim};
    verbs::Node* cl = fabric.add_node();
    verbs::Node* sv = fabric.add_node();
    auto ch = proto::make_reliable_channel(kind, *cl, *sv, echo_handler(),
                                           ChannelConfig{}, RetryPolicy{});
    auto plan = std::make_unique<FaultPlan>(11);
    plan->revoke_remote_access_at(sv->id(), sim::Time(30us));
    fabric.set_fault_plan(std::move(plan));
    int ok = 0;
    sim.spawn([](Simulator& sim, ReliableChannel& ch, int& ok) -> Task<void> {
      Buffer r = (co_await ch.call(proto::to_buffer("one-sided"))).value();
      if (proto::as_string(r) == "one-sided") ++ok;
      co_await sim.sleep_until(sim::Time(50us));
      for (int i = 0; i < 3; ++i) {
        std::string want = "degraded-" + std::to_string(i);
        Buffer d = (co_await ch.call(proto::to_buffer(want))).value();
        if (proto::as_string(d) == want) ++ok;
      }
      ch.abort();
    }(sim, *ch, ok));
    sim.run();
    EXPECT_EQ(sim.live_tasks(), 0u);
    EXPECT_EQ(ok, 4);
    EXPECT_TRUE(ch->degraded());
    EXPECT_EQ(ch->active_kind(), ProtocolKind::kEagerSendRecv);
    EXPECT_GE(ch->reliability().fallbacks, 1u);
    EXPECT_FALSE(fabric.fault_plan()->trace().empty());
  }
}

TEST(Faults, TotalDeadlineBoundsTailLatencyAgainstDeadReplica) {
  // Against a dead server, max_attempts alone rides the full
  // timeout+backoff ladder. A total_deadline must cut the call short with
  // a typed kDeadlineExceeded well before the ladder finishes, so cluster
  // failover can bound tail latency.
  Simulator sim;
  verbs::Fabric fabric{sim};
  verbs::Node* cl = fabric.add_node();
  verbs::Node* sv = fabric.add_node();
  RetryPolicy pol;
  pol.max_attempts = 10;
  pol.timeout = 500us;
  pol.total_deadline = 1200us;
  auto ch = proto::make_reliable_channel(ProtocolKind::kEagerSendRecv, *cl,
                                         *sv, echo_handler(),
                                         ChannelConfig{}, pol);
  auto plan = std::make_unique<FaultPlan>(13);
  plan->crash_node_at(sv->id(), sim::Time(10us));
  fabric.set_fault_plan(std::move(plan));
  std::string errc;
  sim::Time issued{}, failed{};
  sim.spawn([](Simulator& sim, ReliableChannel& ch, std::string& errc,
               sim::Time& issued, sim::Time& failed) -> Task<void> {
    co_await sim.sleep(50us);  // the server is dead now
    issued = sim.now();
    proto::CallResult r = co_await ch.call(proto::to_buffer("doomed"));
    failed = sim.now();
    errc = r ? "unexpected-ok" : std::string(to_string(r.error().errc()));
    ch.abort();
  }(sim, *ch, errc, issued, failed));
  sim.run();
  EXPECT_EQ(sim.live_tasks(), 0u);
  EXPECT_EQ(errc, "deadline-exceeded");
  // The budget is enforced in virtual time (one in-flight attempt may
  // still be draining when it expires, so allow one attempt of slack)...
  EXPECT_LE(failed - issued, sim::Duration(1200us + 500us));
  // ...and it fired well before the 10-attempt ladder would have.
  EXPECT_LT(ch->reliability().attempts, 10u);
  EXPECT_GE(cl->counters().get(obs::Ctr::kDeadlineExceeded), 1u);
}

TEST(Faults, ReplayCacheSuppressesRetriesAcrossCrashAndReconnectEpochs) {
  // A server finishes an op but dies before the response escapes; the
  // node later restarts. The client's retry rides a REBUILT channel (new
  // QPs, next reconnect epoch) under a duplicate-happy wire — yet the op
  // must execute exactly once: the dedupe cache is keyed by sequence
  // number and shared across every channel incarnation.
  Simulator sim;
  verbs::Fabric fabric{sim};
  if (!fabric.check().on())
    fabric.check().set_mode(verbs::VerbsCheck::Mode::kRecord);
  verbs::Node* cl = fabric.add_node();
  verbs::Node* sv = fabric.add_node();
  int executed = 0;
  proto::Handler slow = [&sim, &executed](View req) -> Task<Buffer> {
    ++executed;
    co_await sim.sleep(30us);  // response still pending at crash time
    co_return Buffer(req.begin(), req.end());
  };
  RetryPolicy pol;
  pol.max_attempts = 6;
  pol.timeout = 300us;
  auto ch = proto::make_reliable_channel(ProtocolKind::kEagerSendRecv, *cl,
                                         *sv, slow, ChannelConfig{}, pol);
  auto plan = std::make_unique<FaultPlan>(29);
  plan->profile.duplicate = 0.25;  // wire-level duplicates on top
  plan->crash_node_at(sv->id(), sim::Time(50us));
  plan->restart_node_at(sv->id(), sim::Time(200us));
  fabric.set_fault_plan(std::move(plan));
  std::string got;
  sim.spawn([](Simulator& sim, ReliableChannel& ch, std::string& got)
                -> Task<void> {
    co_await sim.sleep(25us);  // lands just before the crash
    Buffer resp = (co_await ch.call(proto::to_buffer("exactly-once"))).value();
    got = proto::as_string(resp);
    ch.abort();
  }(sim, *ch, got));
  sim.run();
  EXPECT_EQ(sim.live_tasks(), 0u);
  EXPECT_EQ(got, "exactly-once");
  EXPECT_EQ(executed, 1) << "a retry re-executed an already-applied op";
  EXPECT_GE(ch->server_replays(), 1u);
  EXPECT_GE(ch->reliability().reconnects, 1u)
      << "the retry should have crossed a reconnect epoch";
  verbs::AuditReport audit = fabric.audit();
  EXPECT_TRUE(audit.clean()) << audit.str();
}

TEST(Faults, ReliabilityStatsSurfaceAsObsCounters) {
  // The chaos harness asserts on failover behavior through obs counters
  // now; make sure the reliability layer actually feeds them.
  Simulator sim;
  verbs::Fabric fabric{sim};
  verbs::Node* cl = fabric.add_node();
  verbs::Node* sv = fabric.add_node();
  RetryPolicy pol;
  pol.max_attempts = 3;
  pol.timeout = 200us;
  auto ch = proto::make_reliable_channel(ProtocolKind::kEagerSendRecv, *cl,
                                         *sv, echo_handler(),
                                         ChannelConfig{}, pol);
  auto plan = std::make_unique<FaultPlan>(41);
  plan->crash_node_at(sv->id(), sim::Time(10us));
  fabric.set_fault_plan(std::move(plan));
  sim.spawn([](Simulator& sim, ReliableChannel& ch) -> Task<void> {
    co_await sim.sleep(20us);
    (void)co_await ch.call(proto::to_buffer("x"));  // fails; that's the point
    ch.abort();
  }(sim, *ch));
  sim.run();
  EXPECT_EQ(sim.live_tasks(), 0u);
  const proto::ReliabilityStats& rs = ch->reliability();
  EXPECT_EQ(cl->counters().get(obs::Ctr::kRetryAttempts), rs.retries);
  EXPECT_EQ(cl->counters().get(obs::Ctr::kReconnects), rs.reconnects);
  EXPECT_GE(rs.retries, 1u);
  EXPECT_GE(rs.reconnects, 1u);
}

TEST(Faults, HatKvWorkloadSurvivesStochasticFaults) {
  // The full engine (hint-planned channels, generated stubs, mdblite) over
  // a lossy fabric: the RC retransmit machinery absorbs every wire fault.
  Simulator sim;
  verbs::Fabric fabric{sim};
  if (!fabric.check().on())
    fabric.check().set_mode(verbs::VerbsCheck::Mode::kRecord);
  verbs::Node* sn = fabric.add_node();
  kv::HatKVServer server{*sn};
  verbs::Node* cn = fabric.add_node();
  auto plan = std::make_unique<FaultPlan>(77);
  plan->profile.drop = 0.05;
  plan->profile.corrupt = 0.03;
  plan->profile.duplicate = 0.05;
  plan->profile.delay = 0.20;
  fabric.set_fault_plan(std::move(plan));
  core::HatConnection conn(*cn, server.server());
  ::hatkv::HatKVClient client(conn);
  int ok = 0;
  sim.spawn([](::hatkv::HatKVClient& client, kv::HatKVServer& server,
               int& ok) -> Task<void> {
    for (int i = 0; i < 30; ++i) {
      std::string key = "k" + std::to_string(i);
      std::string value = "v" + std::to_string(i * 31);
      co_await client.Put(key, value);
      if (co_await client.Get(key) == value) ++ok;
    }
    server.stop();
  }(client, server, ok));
  sim.run();
  EXPECT_EQ(sim.live_tasks(), 0u);
  EXPECT_EQ(ok, 30);
  EXPECT_GT(fabric.fault_plan()->injected(), 0u);
  verbs::AuditReport audit = fabric.audit();
  EXPECT_TRUE(audit.clean()) << audit.str();
  EXPECT_EQ(audit.violations, 0u) << audit.str();
}

TEST(Faults, HatKvSameSeedIsDeterministic) {
  auto run = [](uint64_t seed) {
    Simulator sim;
    verbs::Fabric fabric{sim};
    verbs::Node* sn = fabric.add_node();
    kv::HatKVServer server{*sn};
    verbs::Node* cn = fabric.add_node();
    auto plan = std::make_unique<FaultPlan>(seed);
    plan->profile.drop = 0.08;
    plan->profile.delay = 0.25;
    fabric.set_fault_plan(std::move(plan));
    core::HatConnection conn(*cn, server.server());
    ::hatkv::HatKVClient client(conn);
    sim.spawn([](::hatkv::HatKVClient& client,
                 kv::HatKVServer& server) -> Task<void> {
      for (int i = 0; i < 15; ++i) {
        co_await client.Put("key" + std::to_string(i), std::string(200, 'x'));
        co_await client.Get("key" + std::to_string(i));
      }
      server.stop();
    }(client, server));
    sim.run();
    EXPECT_EQ(sim.live_tasks(), 0u);
    return std::pair(fabric.fault_plan()->trace(), sim.events_processed());
  };
  auto [trace1, events1] = run(2024);
  auto [trace2, events2] = run(2024);
  EXPECT_EQ(trace1, trace2);
  EXPECT_EQ(events1, events2);
  EXPECT_FALSE(trace1.empty());
}

}  // namespace
}  // namespace hatrpc
