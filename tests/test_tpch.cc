// TPC-H substrate tests: dbgen shape and determinism, date arithmetic, row
// serialization, per-query result invariants (validated against an
// independent single-node reference evaluation where practical), the
// distributed cluster's result equivalence across transport modes, and the
// Fig. 17 ordering (IPoIB slower than HatRPC-Service slower than
// HatRPC-Function).
#include <gtest/gtest.h>

#include <numeric>
#include <unordered_set>

#include "tpch/cluster.h"

namespace hatrpc::tpch {
namespace {

using sim::Task;

DbgenConfig small_cfg() {
  DbgenConfig cfg;
  cfg.scale_factor = 0.002;
  return cfg;
}

TpchSlice merged_single(const DbgenConfig& cfg) {
  // One-worker generation: the whole database in a single slice.
  return std::move(dbgen(cfg, 1)[0]);
}

TEST(Dates, Arithmetic) {
  EXPECT_EQ(make_date(1994, 1, 1), 19940101);
  EXPECT_EQ(add_months(19940101, 3), 19940401);
  EXPECT_EQ(add_months(19941101, 3), 19950201);
  EXPECT_EQ(add_years(19940101, 2), 19960101);
  EXPECT_EQ(add_days(19940101, 5), 19940106);
  EXPECT_EQ(add_days(19940125, 5), 19940202);  // 28-day generator months
  EXPECT_EQ(add_days(19941228, 3), 19950103);  // year rollover
}

TEST(Dbgen, RowCountsScale) {
  TpchSlice db = merged_single(small_cfg());
  EXPECT_EQ(db.region.size(), 5u);
  EXPECT_EQ(db.nation.size(), 25u);
  EXPECT_EQ(db.orders.size(), 3000u);      // 1.5M * 0.002
  EXPECT_GT(db.lineitem.size(), db.orders.size());  // 1..7 lines per order
  EXPECT_EQ(db.customer.size(), 300u);
  EXPECT_EQ(db.partsupp.size(), db.part.size() * 4);
}

TEST(Dbgen, DeterministicForSeed) {
  TpchSlice a = merged_single(small_cfg());
  TpchSlice b = merged_single(small_cfg());
  ASSERT_EQ(a.lineitem.size(), b.lineitem.size());
  EXPECT_EQ(a.lineitem[42].extendedprice, b.lineitem[42].extendedprice);
  EXPECT_EQ(a.orders[10].orderpriority, b.orders[10].orderpriority);
}

TEST(Dbgen, PartitioningCoPartitionsFacts) {
  auto slices = dbgen(small_cfg(), 4);
  size_t total_orders = 0;
  for (const auto& s : slices) {
    total_orders += s.orders.size();
    // Every lineitem's order lives in the same slice.
    std::unordered_set<int32_t> local_orders;
    for (const Order& o : s.orders) local_orders.insert(o.orderkey);
    for (const Lineitem& l : s.lineitem)
      ASSERT_TRUE(local_orders.count(l.orderkey));
  }
  EXPECT_EQ(total_orders, 3000u);
}

TEST(Dbgen, DomainsLookRight) {
  TpchSlice db = merged_single(small_cfg());
  for (const Part& p : db.part) {
    EXPECT_TRUE(p.brand.starts_with("Brand#"));
    EXPECT_GE(p.size, 1);
    EXPECT_LE(p.size, 50);
  }
  for (const Lineitem& l : db.lineitem) {
    EXPECT_GE(l.discount, 0.0);
    EXPECT_LE(l.discount, 0.1);
    EXPECT_LE(l.shipdate, make_date(1999, 12, 28));
    EXPECT_LT(l.shipdate, l.receiptdate);
  }
}

TEST(Rows, SerializationRoundTrip) {
  std::vector<Row> rows;
  rows.push_back({int64_t(42), 3.5, std::string("hello")});
  rows.push_back({std::string(""), int64_t(-1), 0.0});
  rows.push_back({});
  auto bytes = serialize_rows(rows);
  auto back = deserialize_rows(bytes);
  EXPECT_EQ(back, rows);
}

TEST(Rows, SortBySpec) {
  std::vector<Row> rows{{int64_t(1), 2.0}, {int64_t(2), 1.0},
                        {int64_t(1), 1.0}};
  sort_rows(rows, {{0, true}, {1, false}});
  EXPECT_EQ(rows[0], (Row{int64_t(1), 2.0}));
  EXPECT_EQ(rows[1], (Row{int64_t(1), 1.0}));
  EXPECT_EQ(rows[2], (Row{int64_t(2), 1.0}));
}

// ---------------------------------------------------------------------------
// Query invariants on a single merged slice (local + merge pipeline).
// ---------------------------------------------------------------------------

QueryResult run_single(int qid, const TpchSlice& db) {
  const Query& q = all_queries().at(size_t(qid - 1));
  MergeContext ctx{&db};
  return q.merge(q.local(db), ctx);
}

TEST(Queries, AllTwentyTwoExecute) {
  TpchSlice db = merged_single(small_cfg());
  for (const Query& q : all_queries()) {
    QueryResult r = run_single(q.id, db);
    EXPECT_FALSE(r.columns.empty()) << "Q" << q.id;
  }
}

TEST(Queries, Q1MatchesReferenceAggregation) {
  TpchSlice db = merged_single(small_cfg());
  QueryResult r = run_single(1, db);
  // Reference: direct aggregation, independently coded.
  double want_qty = 0;
  int64_t want_cnt = 0;
  for (const Lineitem& l : db.lineitem) {
    if (l.shipdate > make_date(1998, 9, 2)) continue;
    want_qty += l.quantity;
    ++want_cnt;
  }
  double got_qty = 0;
  int64_t got_cnt = 0;
  for (const Row& row : r.rows) {
    got_qty += as_f64(row[2]);
    got_cnt += as_i64(row[7]);
  }
  EXPECT_NEAR(got_qty, want_qty, 1e-6);
  EXPECT_EQ(got_cnt, want_cnt);
  EXPECT_LE(r.rows.size(), 6u);  // few (flag,status) combos
}

TEST(Queries, Q6MatchesReferenceSum) {
  TpchSlice db = merged_single(small_cfg());
  QueryResult r = run_single(6, db);
  double want = 0;
  for (const Lineitem& l : db.lineitem)
    if (l.shipdate / 10000 == 1994 && l.discount >= 0.05 - 1e-9 &&
        l.discount <= 0.07 + 1e-9 && l.quantity < 24)
      want += l.extendedprice * l.discount;
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_NEAR(as_f64(r.rows[0][0]), want, 1e-6);
  EXPECT_GT(want, 0.0);
}

TEST(Queries, Q3ReturnsTopTenByRevenue) {
  TpchSlice db = merged_single(small_cfg());
  QueryResult r = run_single(3, db);
  EXPECT_LE(r.rows.size(), 10u);
  for (size_t i = 1; i < r.rows.size(); ++i)
    EXPECT_GE(as_f64(r.rows[i - 1][1]), as_f64(r.rows[i][1]));
}

TEST(Queries, Q13CountsEveryCustomerOnce) {
  TpchSlice db = merged_single(small_cfg());
  QueryResult r = run_single(13, db);
  int64_t total_customers = 0;
  for (const Row& row : r.rows) total_customers += as_i64(row[1]);
  EXPECT_EQ(total_customers, int64_t(db.customer.size()));
}

TEST(Queries, Q14PercentageBounded) {
  TpchSlice db = merged_single(small_cfg());
  QueryResult r = run_single(14, db);
  double pct = as_f64(r.rows[0][0]);
  EXPECT_GE(pct, 0.0);
  EXPECT_LE(pct, 100.0);
  EXPECT_GT(pct, 5.0);  // PROMO is 1 of 6 type prefixes
  EXPECT_LT(pct, 35.0);
}

TEST(Queries, Q18RespectsThreshold) {
  TpchSlice db = merged_single(small_cfg());
  QueryResult r = run_single(18, db);
  for (const Row& row : r.rows) EXPECT_GT(as_f64(row[5]), 300.0);
}

TEST(Queries, Q5MatchesReferenceRevenue) {
  TpchSlice db = merged_single(small_cfg());
  QueryResult r = run_single(5, db);
  // Independent evaluation: total ASIA-local revenue in 1994.
  std::unordered_map<int32_t, int32_t> cust_nation, supp_nation;
  std::unordered_set<int32_t> asia;
  int32_t asia_rk = -1;
  for (const Region& reg : db.region)
    if (reg.name == "ASIA") asia_rk = reg.regionkey;
  for (const Nation& n : db.nation)
    if (n.regionkey == asia_rk) asia.insert(n.nationkey);
  for (const Customer& c : db.customer) cust_nation[c.custkey] = c.nationkey;
  for (const Supplier& su : db.supplier)
    supp_nation[su.suppkey] = su.nationkey;
  std::unordered_map<int32_t, int32_t> order_cust;
  for (const Order& o : db.orders)
    if (o.orderdate / 10000 == 1994) order_cust[o.orderkey] = o.custkey;
  double want = 0;
  for (const Lineitem& l : db.lineitem) {
    auto oit = order_cust.find(l.orderkey);
    if (oit == order_cust.end()) continue;
    int32_t cn = cust_nation[oit->second], sn = supp_nation[l.suppkey];
    if (cn == sn && asia.count(cn))
      want += l.extendedprice * (1 - l.discount);
  }
  double got = 0;
  for (const Row& row : r.rows) got += as_f64(row[1]);
  EXPECT_NEAR(got, want, 1e-6);
}

TEST(Queries, Q8MarketShareBounded) {
  TpchSlice db = merged_single(small_cfg());
  QueryResult r = run_single(8, db);
  ASSERT_EQ(r.rows.size(), 2u);  // 1995 and 1996
  for (const Row& row : r.rows) {
    double share = as_f64(row[3]);
    EXPECT_GE(share, 0.0);
    EXPECT_LE(share, 1.0);
    EXPECT_GE(as_f64(row[2]), as_f64(row[1]));  // total >= brazil volume
  }
}

TEST(Queries, Q11RespectsValueThreshold) {
  TpchSlice db = merged_single(small_cfg());
  QueryResult r = run_single(11, db);
  // Recompute the total German partsupp value independently.
  std::unordered_set<int32_t> german;
  int32_t de = -1;
  for (const Nation& n : db.nation)
    if (n.name == "GERMANY") de = n.nationkey;
  for (const Supplier& su : db.supplier)
    if (su.nationkey == de) german.insert(su.suppkey);
  double total = 0;
  for (const PartSupp& ps : db.partsupp)
    if (german.count(ps.suppkey)) total += ps.supplycost * ps.availqty;
  for (const Row& row : r.rows)
    EXPECT_GT(as_f64(row[1]), total * 0.0001);
  // Sorted descending by value.
  for (size_t i = 1; i < r.rows.size(); ++i)
    EXPECT_GE(as_f64(r.rows[i - 1][1]), as_f64(r.rows[i][1]));
}

TEST(Queries, Q12MatchesReferenceCounts) {
  TpchSlice db = merged_single(small_cfg());
  QueryResult r = run_single(12, db);
  std::unordered_map<int32_t, const Order*> orders;
  for (const Order& o : db.orders) orders[o.orderkey] = &o;
  int64_t want_high = 0, want_low = 0;
  for (const Lineitem& l : db.lineitem) {
    if (l.shipmode != "MAIL" && l.shipmode != "SHIP") continue;
    if (!(l.commitdate < l.receiptdate && l.shipdate < l.commitdate))
      continue;
    if (l.receiptdate / 10000 != 1994) continue;
    const Order* o = orders[l.orderkey];
    bool high =
        o->orderpriority == "1-URGENT" || o->orderpriority == "2-HIGH";
    (high ? want_high : want_low) += 1;
  }
  int64_t got_high = 0, got_low = 0;
  for (const Row& row : r.rows) {
    got_high += as_i64(row[1]);
    got_low += as_i64(row[2]);
  }
  EXPECT_EQ(got_high, want_high);
  EXPECT_EQ(got_low, want_low);
}

TEST(Queries, Q16DistinctSupplierCounts) {
  TpchSlice db = merged_single(small_cfg());
  QueryResult r = run_single(16, db);
  std::unordered_set<std::string> seen;
  for (const Row& row : r.rows) {
    EXPECT_GE(as_i64(row[3]), 1);
    EXPECT_NE(as_str(row[0]), "Brand#45");
    std::string key = group_key(row, {0, 1, 2});
    EXPECT_TRUE(seen.insert(key).second) << "duplicate group " << key;
  }
  // Sorted by supplier_cnt descending first.
  for (size_t i = 1; i < r.rows.size(); ++i)
    EXPECT_GE(as_i64(r.rows[i - 1][3]), as_i64(r.rows[i][3]));
}

TEST(Queries, Q21OrderedAndPositive) {
  TpchSlice db = merged_single(small_cfg());
  QueryResult r = run_single(21, db);
  EXPECT_LE(r.rows.size(), 100u);
  for (const Row& row : r.rows) EXPECT_GT(as_i64(row[1]), 0);
  for (size_t i = 1; i < r.rows.size(); ++i)
    EXPECT_GE(as_i64(r.rows[i - 1][1]), as_i64(r.rows[i][1]));
}

TEST(Queries, Q22ExcludesCustomersWithOrders) {
  TpchSlice db = merged_single(small_cfg());
  QueryResult r = run_single(22, db);
  // Every reported group has positive counts; total counted customers
  // cannot exceed the customers in the target country codes.
  int64_t total = 0;
  for (const Row& row : r.rows) {
    EXPECT_GT(as_i64(row[1]), 0);
    EXPECT_GT(as_f64(row[2]), 0.0);
    total += as_i64(row[1]);
  }
  EXPECT_LE(total, int64_t(db.customer.size()));
}

TEST(Dbgen, DistributionsCoverDomains) {
  TpchSlice db = merged_single(small_cfg());
  std::unordered_set<std::string> segments, priorities, shipmodes, brands;
  for (const Customer& c : db.customer) segments.insert(c.mktsegment);
  for (const Order& o : db.orders) priorities.insert(o.orderpriority);
  for (const Lineitem& l : db.lineitem) shipmodes.insert(l.shipmode);
  for (const Part& p : db.part) brands.insert(p.brand);
  EXPECT_EQ(segments.size(), 5u);
  EXPECT_EQ(priorities.size(), 5u);
  EXPECT_EQ(shipmodes.size(), 7u);
  EXPECT_GE(brands.size(), 20u);  // Brand#11..Brand#55 grid
  // Order dates span the full 1992-1998 range.
  Date lo = 99999999, hi = 0;
  for (const Order& o : db.orders) {
    lo = std::min(lo, o.orderdate);
    hi = std::max(hi, o.orderdate);
  }
  EXPECT_LT(lo, make_date(1993, 1, 1));
  EXPECT_GT(hi, make_date(1997, 12, 1));
}

// ---------------------------------------------------------------------------
// Distributed execution.
// ---------------------------------------------------------------------------

QueryResult run_distributed(int qid, TpchMode mode, int workers,
                            sim::Duration* elapsed = nullptr) {
  sim::Simulator sim;
  TpchCluster cluster(sim, workers, small_cfg(), mode);
  QueryResult result;
  sim.spawn([](TpchCluster& cluster, int qid, QueryResult& result)
                -> Task<void> {
    result = co_await cluster.run_query(qid);
    cluster.stop();
  }(cluster, qid, result));
  sim.run();
  if (elapsed) *elapsed = cluster.last_elapsed();
  return result;
}

TEST(TpchCluster, DistributedMatchesSingleNodeForEveryQuery) {
  TpchSlice db = merged_single(small_cfg());
  for (const Query& q : all_queries()) {
    QueryResult single = run_single(q.id, db);
    QueryResult dist = run_distributed(q.id, TpchMode::kHatFunction, 4);
    ASSERT_EQ(dist.rows.size(), single.rows.size()) << "Q" << q.id;
    for (size_t i = 0; i < dist.rows.size(); ++i) {
      ASSERT_EQ(dist.rows[i].size(), single.rows[i].size()) << "Q" << q.id;
      for (size_t c = 0; c < dist.rows[i].size(); ++c) {
        const Value& a = dist.rows[i][c];
        const Value& b = single.rows[i][c];
        if (std::holds_alternative<double>(a)) {
          EXPECT_NEAR(std::get<double>(a), std::get<double>(b), 1e-4)
              << "Q" << q.id << " row " << i << " col " << c;
        } else {
          EXPECT_EQ(a, b) << "Q" << q.id << " row " << i << " col " << c;
        }
      }
    }
  }
}

TEST(TpchCluster, ModesAgreeOnResults) {
  for (int qid : {1, 5, 13, 19}) {
    QueryResult ipoib = run_distributed(qid, TpchMode::kThriftIpoib, 3);
    QueryResult svc = run_distributed(qid, TpchMode::kHatService, 3);
    QueryResult fn = run_distributed(qid, TpchMode::kHatFunction, 3);
    EXPECT_EQ(ipoib.rows.size(), svc.rows.size()) << qid;
    EXPECT_EQ(svc.rows.size(), fn.rows.size()) << qid;
  }
}

TEST(TpchCluster, Fig17OrderingHoldsOnTotals) {
  // Total time over a communication-relevant subset must order:
  // IPoIB > HatRPC-Service > HatRPC-Function.
  auto total = [&](TpchMode mode) {
    sim::Duration sum{};
    for (int qid : {1, 3, 10, 13, 18, 21}) {
      sim::Duration t{};
      run_distributed(qid, mode, 4, &t);
      sum += t;
    }
    return sum;
  };
  sim::Duration ipoib = total(TpchMode::kThriftIpoib);
  sim::Duration svc = total(TpchMode::kHatService);
  sim::Duration fn = total(TpchMode::kHatFunction);
  EXPECT_GT(ipoib, svc);
  EXPECT_GE(svc, fn);
}

}  // namespace
}  // namespace hatrpc::tpch
