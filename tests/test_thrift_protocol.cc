// Serialization tests: Binary and Compact protocol round trips for every
// scalar type, strings, containers, nested structs, field skipping, message
// envelopes, and compact-specific encodings (zigzag varints, bool-in-header,
// field-id deltas). Parameterized across both protocols where behaviour
// must be identical.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <memory>

#include "sim/rng.h"

#include "thrift/json_protocol.h"
#include "thrift/protocol.h"

namespace hatrpc::thrift {
namespace {

enum class Proto { kBinary, kCompact, kJson };

std::unique_ptr<TProtocol> make_proto(Proto p, TMemoryBuffer& buf) {
  switch (p) {
    case Proto::kBinary: return std::make_unique<TBinaryProtocol>(buf);
    case Proto::kCompact: return std::make_unique<TCompactProtocol>(buf);
    case Proto::kJson: return std::make_unique<TJSONProtocol>(buf);
  }
  return nullptr;
}

class ProtocolRoundTrip : public ::testing::TestWithParam<Proto> {};

TEST_P(ProtocolRoundTrip, Scalars) {
  TMemoryBuffer buf;
  auto p = make_proto(GetParam(), buf);
  p->writeBool(true);
  p->writeBool(false);
  p->writeByte(-7);
  p->writeI16(-12345);
  p->writeI32(123456789);
  p->writeI64(-9876543210123LL);
  p->writeDouble(3.141592653589793);
  p->writeString("hello thrift");
  p->writeString("");

  EXPECT_TRUE(p->readBool());
  EXPECT_FALSE(p->readBool());
  EXPECT_EQ(p->readByte(), -7);
  EXPECT_EQ(p->readI16(), -12345);
  EXPECT_EQ(p->readI32(), 123456789);
  EXPECT_EQ(p->readI64(), -9876543210123LL);
  EXPECT_DOUBLE_EQ(p->readDouble(), 3.141592653589793);
  EXPECT_EQ(p->readString(), "hello thrift");
  EXPECT_EQ(p->readString(), "");
}

TEST_P(ProtocolRoundTrip, ExtremeValues) {
  TMemoryBuffer buf;
  auto p = make_proto(GetParam(), buf);
  p->writeI16(std::numeric_limits<int16_t>::min());
  p->writeI16(std::numeric_limits<int16_t>::max());
  p->writeI32(std::numeric_limits<int32_t>::min());
  p->writeI32(std::numeric_limits<int32_t>::max());
  p->writeI64(std::numeric_limits<int64_t>::min());
  p->writeI64(std::numeric_limits<int64_t>::max());
  p->writeDouble(-0.0);
  p->writeDouble(std::numeric_limits<double>::infinity());
  p->writeDouble(std::numeric_limits<double>::denorm_min());

  EXPECT_EQ(p->readI16(), std::numeric_limits<int16_t>::min());
  EXPECT_EQ(p->readI16(), std::numeric_limits<int16_t>::max());
  EXPECT_EQ(p->readI32(), std::numeric_limits<int32_t>::min());
  EXPECT_EQ(p->readI32(), std::numeric_limits<int32_t>::max());
  EXPECT_EQ(p->readI64(), std::numeric_limits<int64_t>::min());
  EXPECT_EQ(p->readI64(), std::numeric_limits<int64_t>::max());
  EXPECT_TRUE(std::signbit(p->readDouble()));
  EXPECT_TRUE(std::isinf(p->readDouble()));
  EXPECT_EQ(p->readDouble(), std::numeric_limits<double>::denorm_min());
}

TEST_P(ProtocolRoundTrip, MessageEnvelope) {
  TMemoryBuffer buf;
  auto p = make_proto(GetParam(), buf);
  p->writeMessageBegin("MultiGET", TMessageType::kCall, 42);
  p->writeMessageEnd();
  auto h = p->readMessageBegin();
  EXPECT_EQ(h.name, "MultiGET");
  EXPECT_EQ(h.type, TMessageType::kCall);
  EXPECT_EQ(h.seqid, 42);
}

TEST_P(ProtocolRoundTrip, StructWithFields) {
  TMemoryBuffer buf;
  auto p = make_proto(GetParam(), buf);
  p->writeStructBegin("KV");
  p->writeFieldBegin(TType::kString, 1);
  p->writeString("key-abc");
  p->writeFieldEnd();
  p->writeFieldBegin(TType::kI64, 2);
  p->writeI64(999);
  p->writeFieldEnd();
  p->writeFieldBegin(TType::kBool, 3);
  p->writeBool(true);
  p->writeFieldEnd();
  p->writeFieldStop();
  p->writeStructEnd();

  p->readStructBegin();
  auto f1 = p->readFieldBegin();
  EXPECT_EQ(f1.type, TType::kString);
  EXPECT_EQ(f1.id, 1);
  EXPECT_EQ(p->readString(), "key-abc");
  p->readFieldEnd();
  auto f2 = p->readFieldBegin();
  EXPECT_EQ(f2.type, TType::kI64);
  EXPECT_EQ(f2.id, 2);
  EXPECT_EQ(p->readI64(), 999);
  p->readFieldEnd();
  auto f3 = p->readFieldBegin();
  EXPECT_EQ(f3.type, TType::kBool);
  EXPECT_EQ(f3.id, 3);
  EXPECT_TRUE(p->readBool());
  p->readFieldEnd();
  auto fstop = p->readFieldBegin();
  EXPECT_EQ(fstop.type, TType::kStop);
  p->readStructEnd();
}

TEST_P(ProtocolRoundTrip, NonMonotonicFieldIds) {
  // Compact's delta encoding must fall back to explicit ids going backward.
  TMemoryBuffer buf;
  auto p = make_proto(GetParam(), buf);
  p->writeStructBegin("S");
  p->writeFieldBegin(TType::kI32, 10);
  p->writeI32(1);
  p->writeFieldEnd();
  p->writeFieldBegin(TType::kI32, 3);
  p->writeI32(2);
  p->writeFieldEnd();
  p->writeFieldBegin(TType::kI32, 300);
  p->writeI32(3);
  p->writeFieldEnd();
  p->writeFieldStop();
  p->writeStructEnd();

  p->readStructBegin();
  EXPECT_EQ(p->readFieldBegin().id, 10);
  EXPECT_EQ(p->readI32(), 1);
  p->readFieldEnd();
  EXPECT_EQ(p->readFieldBegin().id, 3);
  EXPECT_EQ(p->readI32(), 2);
  p->readFieldEnd();
  EXPECT_EQ(p->readFieldBegin().id, 300);
  EXPECT_EQ(p->readI32(), 3);
  p->readFieldEnd();
  EXPECT_EQ(p->readFieldBegin().type, TType::kStop);
  p->readStructEnd();
}

TEST_P(ProtocolRoundTrip, Containers) {
  TMemoryBuffer buf;
  auto p = make_proto(GetParam(), buf);
  p->writeListBegin(TType::kI32, 3);
  for (int32_t v : {7, 8, 9}) p->writeI32(v);
  p->writeListEnd();
  p->writeMapBegin(TType::kString, TType::kI64, 2);
  p->writeString("a");
  p->writeI64(1);
  p->writeString("b");
  p->writeI64(2);
  p->writeMapEnd();
  p->writeSetBegin(TType::kByte, 20);  // large set: compact long form
  for (int i = 0; i < 20; ++i) p->writeByte(static_cast<int8_t>(i));
  p->writeSetEnd();

  auto l = p->readListBegin();
  EXPECT_EQ(l.elem, TType::kI32);
  EXPECT_EQ(l.size, 3u);
  EXPECT_EQ(p->readI32(), 7);
  EXPECT_EQ(p->readI32(), 8);
  EXPECT_EQ(p->readI32(), 9);
  p->readListEnd();
  auto m = p->readMapBegin();
  EXPECT_EQ(m.key, TType::kString);
  EXPECT_EQ(m.val, TType::kI64);
  EXPECT_EQ(m.size, 2u);
  EXPECT_EQ(p->readString(), "a");
  EXPECT_EQ(p->readI64(), 1);
  EXPECT_EQ(p->readString(), "b");
  EXPECT_EQ(p->readI64(), 2);
  p->readMapEnd();
  auto s = p->readSetBegin();
  EXPECT_EQ(s.elem, TType::kByte);
  EXPECT_EQ(s.size, 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(p->readByte(), i);
  p->readSetEnd();
}

TEST_P(ProtocolRoundTrip, EmptyMap) {
  TMemoryBuffer buf;
  auto p = make_proto(GetParam(), buf);
  p->writeMapBegin(TType::kString, TType::kI32, 0);
  p->writeMapEnd();
  p->writeI32(77);  // sentinel to prove position is right
  auto m = p->readMapBegin();
  EXPECT_EQ(m.size, 0u);
  p->readMapEnd();
  EXPECT_EQ(p->readI32(), 77);
}

TEST_P(ProtocolRoundTrip, NestedStructs) {
  TMemoryBuffer buf;
  auto p = make_proto(GetParam(), buf);
  p->writeStructBegin("Outer");
  p->writeFieldBegin(TType::kStruct, 1);
  p->writeStructBegin("Inner");
  p->writeFieldBegin(TType::kI32, 5);
  p->writeI32(55);
  p->writeFieldEnd();
  p->writeFieldStop();
  p->writeStructEnd();
  p->writeFieldEnd();
  p->writeFieldBegin(TType::kI32, 2);
  p->writeI32(22);
  p->writeFieldEnd();
  p->writeFieldStop();
  p->writeStructEnd();

  p->readStructBegin();
  auto f = p->readFieldBegin();
  EXPECT_EQ(f.type, TType::kStruct);
  p->readStructBegin();
  EXPECT_EQ(p->readFieldBegin().id, 5);
  EXPECT_EQ(p->readI32(), 55);
  p->readFieldEnd();
  EXPECT_EQ(p->readFieldBegin().type, TType::kStop);
  p->readStructEnd();
  p->readFieldEnd();
  // Field-id tracking must be restored after the nested struct (id 2 after
  // id 1, a delta of 1 in compact).
  auto f2 = p->readFieldBegin();
  EXPECT_EQ(f2.id, 2);
  EXPECT_EQ(p->readI32(), 22);
  p->readFieldEnd();
  EXPECT_EQ(p->readFieldBegin().type, TType::kStop);
  p->readStructEnd();
}

TEST_P(ProtocolRoundTrip, SkipUnknownFields) {
  TMemoryBuffer buf;
  auto p = make_proto(GetParam(), buf);
  p->writeStructBegin("S");
  p->writeFieldBegin(TType::kList, 1);
  p->writeListBegin(TType::kString, 2);
  p->writeString("skip-me");
  p->writeString("me-too");
  p->writeListEnd();
  p->writeFieldEnd();
  p->writeFieldBegin(TType::kStruct, 2);
  p->writeStructBegin("Inner");
  p->writeFieldBegin(TType::kDouble, 1);
  p->writeDouble(1.5);
  p->writeFieldEnd();
  p->writeFieldStop();
  p->writeStructEnd();
  p->writeFieldEnd();
  p->writeFieldBegin(TType::kI32, 3);
  p->writeI32(42);
  p->writeFieldEnd();
  p->writeFieldStop();
  p->writeStructEnd();

  p->readStructBegin();
  auto f1 = p->readFieldBegin();
  p->skip(f1.type);
  p->readFieldEnd();
  auto f2 = p->readFieldBegin();
  p->skip(f2.type);
  p->readFieldEnd();
  auto f3 = p->readFieldBegin();
  EXPECT_EQ(f3.id, 3);
  EXPECT_EQ(p->readI32(), 42);
  p->readFieldEnd();
  EXPECT_EQ(p->readFieldBegin().type, TType::kStop);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolRoundTrip,
                         ::testing::Values(Proto::kBinary, Proto::kCompact,
                                           Proto::kJson),
                         [](const auto& info) {
                           switch (info.param) {
                             case Proto::kBinary: return "Binary";
                             case Proto::kCompact: return "Compact";
                             case Proto::kJson: return "Json";
                           }
                           return "?";
                         });

TEST(CompactProtocol, SmallIntsEncodeSmallerThanBinary) {
  TMemoryBuffer b1, b2;
  TBinaryProtocol bin(b1);
  TCompactProtocol cmp(b2);
  for (int i = 0; i < 100; ++i) {
    bin.writeI64(i);
    cmp.writeI64(i);
  }
  EXPECT_EQ(b1.view().size(), 800u);
  EXPECT_LT(b2.view().size(), 200u);  // one varint byte each
}

TEST(CompactProtocol, ZigzagMapsSignBitsCompactly) {
  TMemoryBuffer buf;
  TCompactProtocol p(buf);
  p.writeI32(-1);  // zigzag(-1) = 1 -> single byte
  EXPECT_EQ(buf.view().size(), 1u);
  EXPECT_EQ(p.readI32(), -1);
}

TEST(BinaryProtocol, RejectsBadVersion) {
  TMemoryBuffer buf;
  TBinaryProtocol w(buf);
  w.writeI32(0x12345678);  // not a strict-mode header
  w.writeString("x");
  w.writeI32(0);
  TBinaryProtocol r(buf);
  EXPECT_THROW(r.readMessageBegin(), TProtocolException);
}

TEST(BinaryProtocol, RejectsNegativeStringLength) {
  TMemoryBuffer buf;
  TBinaryProtocol w(buf);
  w.writeI32(-5);
  TBinaryProtocol r(buf);
  EXPECT_THROW(r.readString(), TProtocolException);
}

TEST(JsonProtocol, WireFormatIsReadableJson) {
  TMemoryBuffer buf;
  TJSONProtocol p(buf);
  p.writeStructBegin("S");
  p.writeFieldBegin(TType::kI32, 1);
  p.writeI32(42);
  p.writeFieldEnd();
  p.writeFieldBegin(TType::kString, 2);
  p.writeString("hi \"there\"");
  p.writeFieldEnd();
  p.writeFieldStop();
  p.writeStructEnd();
  auto v = buf.view();
  std::string wire(reinterpret_cast<const char*>(v.data()), v.size());
  EXPECT_EQ(wire,
            "{\"1\":{\"i32\":42},\"2\":{\"str\":\"hi \\\"there\\\"\"}}");
}

TEST(JsonProtocol, NumericMapKeysAreQuoted) {
  TMemoryBuffer buf;
  TJSONProtocol p(buf);
  p.writeMapBegin(TType::kI64, TType::kString, 2);
  p.writeI64(7);
  p.writeString("seven");
  p.writeI64(-3);
  p.writeString("neg");
  p.writeMapEnd();
  auto v = buf.view();
  std::string wire(reinterpret_cast<const char*>(v.data()), v.size());
  EXPECT_NE(wire.find("\"7\":\"seven\""), std::string::npos) << wire;
  TJSONProtocol r(buf);
  auto m = r.readMapBegin();
  EXPECT_EQ(m.size, 2u);
  EXPECT_EQ(r.readI64(), 7);
  EXPECT_EQ(r.readString(), "seven");
  EXPECT_EQ(r.readI64(), -3);
  EXPECT_EQ(r.readString(), "neg");
  r.readMapEnd();
}

TEST(JsonProtocol, MessageEnvelopeRoundTrip) {
  TMemoryBuffer buf;
  TJSONProtocol p(buf);
  p.writeMessageBegin("Ping", TMessageType::kCall, 9);
  p.writeMessageEnd();
  TJSONProtocol r(buf);
  auto h = r.readMessageBegin();
  EXPECT_EQ(h.name, "Ping");
  EXPECT_EQ(h.type, TMessageType::kCall);
  EXPECT_EQ(h.seqid, 9);
  r.readMessageEnd();
}

TEST(MemoryBuffer, UnderflowThrows) {
  TMemoryBuffer buf;
  buf.write("ab", 2);
  char out[4];
  EXPECT_THROW(buf.read(out, 4), TTransportException);
}

TEST(MemoryBuffer, WrapGivesReadAccess) {
  std::string s = "wrapped";
  auto b = TMemoryBuffer::wrap(
      {reinterpret_cast<const std::byte*>(s.data()), s.size()});
  EXPECT_EQ(b.read_string(7), "wrapped");
  EXPECT_EQ(b.readable(), 0u);
}

// ---------------------------------------------------------------------------
// Fuzz-style property test: randomly generated nested documents must
// round-trip identically through every protocol.
// ---------------------------------------------------------------------------

TEST_P(ProtocolRoundTrip, FuzzedNestedStructsRoundTrip) {
  for (uint64_t seed : {1u, 7u, 42u, 1234u, 99999u}) {
    TMemoryBuffer buf;
    auto p = make_proto(GetParam(), buf);
    hatrpc::sim::Rng wrng(seed), rrng(seed);

    // Recursive generator shared by writer and verifier: both walk the
    // same RNG stream, so the verifier knows exactly what to expect.
    std::function<void(hatrpc::sim::Rng&, bool, int)> walk =
        [&](hatrpc::sim::Rng& rng, bool writing, int depth) {
      int nfields = static_cast<int>(rng.uniform(1, 4));
      if (writing) p->writeStructBegin("F");
      else p->readStructBegin();
      int16_t id = 0;
      for (int f = 0; f < nfields; ++f) {
        id = static_cast<int16_t>(id + rng.uniform(1, 20));
        int t = depth < 2 ? static_cast<int>(rng.bounded(6))
                          : static_cast<int>(rng.bounded(5));
        TType tt;
        switch (t) {
          case 0: tt = TType::kBool; break;
          case 1: tt = TType::kI32; break;
          case 2: tt = TType::kI64; break;
          case 3: tt = TType::kDouble; break;
          case 4: tt = TType::kString; break;
          default: tt = TType::kStruct; break;
        }
        if (writing) p->writeFieldBegin(tt, id);
        else {
          auto fh = p->readFieldBegin();
          ASSERT_EQ(fh.type, tt);
          ASSERT_EQ(fh.id, id);
        }
        switch (t) {
          case 0: {
            bool v = rng.chance(0.5);
            if (writing) p->writeBool(v);
            else EXPECT_EQ(p->readBool(), v);
            break;
          }
          case 1: {
            auto v = static_cast<int32_t>(rng.next());
            if (writing) p->writeI32(v);
            else EXPECT_EQ(p->readI32(), v);
            break;
          }
          case 2: {
            auto v = static_cast<int64_t>(rng.next());
            if (writing) p->writeI64(v);
            else EXPECT_EQ(p->readI64(), v);
            break;
          }
          case 3: {
            double v = rng.uniform01() * 1e9 - 5e8;
            if (writing) p->writeDouble(v);
            else EXPECT_DOUBLE_EQ(p->readDouble(), v);
            break;
          }
          case 4: {
            size_t n = rng.bounded(40);
            std::string v;
            for (size_t i = 0; i < n; ++i)
              v += static_cast<char>(' ' + rng.bounded(94));
            if (writing) p->writeString(v);
            else EXPECT_EQ(p->readString(), v);
            break;
          }
          default:
            walk(rng, writing, depth + 1);
            break;
        }
        if (writing) p->writeFieldEnd();
        else p->readFieldEnd();
      }
      if (writing) p->writeFieldStop();
      else EXPECT_EQ(p->readFieldBegin().type, TType::kStop);
      if (writing) p->writeStructEnd();
      else p->readStructEnd();
    };

    walk(wrng, true, 0);
    walk(rrng, false, 0);
  }
}

}  // namespace
}  // namespace hatrpc::thrift
