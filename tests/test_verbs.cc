// Unit tests for the simulated verbs layer: memory registration and
// protection, all four opcodes (functional byte movement + completions),
// chained work requests, polling disciplines, link contention, RNR
// backpressure, and latency calibration against the cost model.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <utility>

#include "verbs/verbs.h"

namespace hatrpc::verbs {
namespace {

using sim::PollMode;
using sim::Simulator;
using sim::Task;
using namespace std::chrono_literals;

struct Pair {
  Simulator sim;
  Fabric fabric{sim};
  Node* a = fabric.add_node();
  Node* b = fabric.add_node();
  CompletionQueue* a_scq = a->create_cq();
  CompletionQueue* a_rcq = a->create_cq();
  CompletionQueue* b_scq = b->create_cq();
  CompletionQueue* b_rcq = b->create_cq();
  QueuePair* qa = a->create_qp(*a_scq, *a_rcq);
  QueuePair* qb = b->create_qp(*b_scq, *b_rcq);

  Pair() { Fabric::connect(*qa, *qb); }
};

void fill(MemoryRegion* mr, const std::string& s) {
  std::memcpy(mr->data(), s.data(), s.size());
}

std::string read_back(MemoryRegion* mr, size_t n, size_t off = 0) {
  return std::string(reinterpret_cast<const char*>(mr->data()) + off, n);
}

TEST(Memory, AllocAndResolve) {
  ProtectionDomain pd(0);
  MemoryRegion* mr = pd.alloc_mr(4096);
  EXPECT_EQ(mr->size(), 4096u);
  EXPECT_NE(mr->lkey(), 0u);
  auto span = pd.resolve(mr->remote(128), 64);
  EXPECT_EQ(span.size(), 64u);
  EXPECT_EQ(reinterpret_cast<uint64_t>(span.data()), mr->addr() + 128);
}

TEST(Memory, ResolveRejectsBadRkey) {
  ProtectionDomain pd(0);
  pd.alloc_mr(64);
  EXPECT_THROW(pd.resolve(RemoteAddr{0, 999}, 8), std::runtime_error);
}

TEST(Memory, ResolveRejectsOutOfBounds) {
  ProtectionDomain pd(0);
  MemoryRegion* mr = pd.alloc_mr(64);
  EXPECT_THROW(pd.resolve(mr->remote(60), 8), std::runtime_error);
  EXPECT_NO_THROW(pd.resolve(mr->remote(56), 8));
}

TEST(Memory, RegisteredBytesTracked) {
  ProtectionDomain pd(0);
  MemoryRegion* a = pd.alloc_mr(100);
  pd.alloc_mr(200);
  EXPECT_EQ(pd.registered_bytes(), 300u);
  pd.dereg_mr(a);
  EXPECT_EQ(pd.registered_bytes(), 200u);
  EXPECT_EQ(pd.mr_count(), 1u);
}

TEST(Verbs, SendRecvMovesBytes) {
  Pair p;
  MemoryRegion* src = p.a->pd().alloc_mr(64);
  MemoryRegion* dst = p.b->pd().alloc_mr(64);
  fill(src, "hello rdma");

  p.sim.spawn([](Pair& p, MemoryRegion* src, MemoryRegion* dst) -> Task<void> {
    p.qb->post_recv(RecvWr{.wr_id = 7, .buf = {dst->data(), 64}});
    co_await p.qa->post_send(SendWr{.wr_id = 1,
                                    .opcode = Opcode::kSend,
                                    .local = {src->data(), 10}});
    Wc rwc = co_await p.b_rcq->wait(PollMode::kBusy);
    EXPECT_EQ(rwc.wr_id, 7u);
    EXPECT_EQ(rwc.opcode, WcOpcode::kRecv);
    EXPECT_EQ(rwc.byte_len, 10u);
    Wc swc = co_await p.a_scq->wait(PollMode::kBusy);
    EXPECT_EQ(swc.wr_id, 1u);
    EXPECT_EQ(swc.opcode, WcOpcode::kSend);
  }(p, src, dst));
  p.sim.run();
  EXPECT_EQ(p.sim.live_tasks(), 0u);
  EXPECT_EQ(read_back(dst, 10), "hello rdma");
}

TEST(Verbs, WriteIsOneSided) {
  Pair p;
  MemoryRegion* src = p.a->pd().alloc_mr(64);
  MemoryRegion* dst = p.b->pd().alloc_mr(64);
  fill(src, "write-data");

  p.sim.spawn([](Pair& p, MemoryRegion* src, MemoryRegion* dst) -> Task<void> {
    co_await p.qa->post_send(SendWr{.wr_id = 2,
                                    .opcode = Opcode::kWrite,
                                    .local = {src->data(), 10},
                                    .remote = dst->remote(16)});
    Wc wc = co_await p.a_scq->wait(PollMode::kBusy);
    EXPECT_EQ(wc.opcode, WcOpcode::kRdmaWrite);
  }(p, src, dst));
  p.sim.run();
  EXPECT_EQ(read_back(dst, 10, 16), "write-data");
  // One-sided: no completion ever reaches the target's recv CQ.
  EXPECT_EQ(p.b_rcq->delivered(), 0u);
}

TEST(Verbs, WriteImmDeliversImmAndConsumesRecv) {
  Pair p;
  MemoryRegion* src = p.a->pd().alloc_mr(64);
  MemoryRegion* dst = p.b->pd().alloc_mr(64);
  fill(src, "imm-payload");

  p.sim.spawn([](Pair& p, MemoryRegion* src, MemoryRegion* dst) -> Task<void> {
    p.qb->post_recv(RecvWr{.wr_id = 9, .buf = {nullptr, 0}});
    co_await p.qa->post_send(SendWr{.wr_id = 3,
                                    .opcode = Opcode::kWriteImm,
                                    .local = {src->data(), 11},
                                    .remote = dst->remote(0),
                                    .imm = 0xabcd});
    Wc wc = co_await p.b_rcq->wait(PollMode::kBusy);
    EXPECT_EQ(wc.opcode, WcOpcode::kRecvImm);
    EXPECT_EQ(wc.imm, 0xabcdu);
    EXPECT_EQ(wc.byte_len, 11u);
  }(p, src, dst));
  p.sim.run();
  EXPECT_EQ(read_back(dst, 11), "imm-payload");
  EXPECT_EQ(p.qb->posted_recvs(), 0u);
}

TEST(Verbs, ReadFetchesRemoteBytes) {
  Pair p;
  MemoryRegion* local = p.a->pd().alloc_mr(64);
  MemoryRegion* remote = p.b->pd().alloc_mr(64);
  fill(remote, "server-side-data");

  p.sim.spawn([](Pair& p, MemoryRegion* l, MemoryRegion* r) -> Task<void> {
    co_await p.qa->post_send(SendWr{.wr_id = 4,
                                    .opcode = Opcode::kRead,
                                    .local = {l->data(), 16},
                                    .remote = r->remote(0)});
    Wc wc = co_await p.a_scq->wait(PollMode::kBusy);
    EXPECT_EQ(wc.opcode, WcOpcode::kRdmaRead);
    EXPECT_EQ(wc.byte_len, 16u);
  }(p, local, remote));
  p.sim.run();
  EXPECT_EQ(read_back(local, 16), "server-side-data");
  // READ bypasses the responder CPU entirely: nothing on b's CQs.
  EXPECT_EQ(p.b_rcq->delivered(), 0u);
  EXPECT_EQ(p.b_scq->delivered(), 0u);
}

TEST(Verbs, UnsignaledSendProducesNoLocalCompletion) {
  Pair p;
  MemoryRegion* src = p.a->pd().alloc_mr(64);
  MemoryRegion* dst = p.b->pd().alloc_mr(64);
  p.sim.spawn([](Pair& p, MemoryRegion* src, MemoryRegion* dst) -> Task<void> {
    p.qb->post_recv(RecvWr{.wr_id = 1, .buf = {dst->data(), 64}});
    co_await p.qa->post_send(SendWr{.wr_id = 5,
                                    .opcode = Opcode::kSend,
                                    .local = {src->data(), 8},
                                    .signaled = false});
    co_await p.b_rcq->wait(PollMode::kBusy);
  }(p, src, dst));
  p.sim.run();
  EXPECT_EQ(p.a_scq->delivered(), 0u);
}

TEST(Verbs, SmallWriteRoundTripLatencyCalibrated) {
  // A signaled 8B WRITE completes at the requester in roughly one RTT:
  // post + wqe + wire + propagation + ack + cqe + pickup. Expect ~1.3-3 us.
  Pair p;
  MemoryRegion* src = p.a->pd().alloc_mr(64);
  MemoryRegion* dst = p.b->pd().alloc_mr(64);
  sim::Time done{};
  p.sim.spawn([](Pair& p, MemoryRegion* src, MemoryRegion* dst,
                 sim::Time& done) -> Task<void> {
    co_await p.qa->post_send(SendWr{.wr_id = 1,
                                    .opcode = Opcode::kWrite,
                                    .local = {src->data(), 8},
                                    .remote = dst->remote(0)});
    co_await p.a_scq->wait(PollMode::kBusy);
    done = p.sim.now();
  }(p, src, dst, done));
  p.sim.run();
  EXPECT_GE(done, 1000ns);
  EXPECT_LE(done, 3000ns);
}

TEST(Verbs, LargeTransferDominatedByWireTime) {
  // 1 MB at 12.5 GB/s is 80 us of serialization; end-to-end should be close.
  Pair p;
  constexpr size_t kBytes = 1 << 20;
  MemoryRegion* src = p.a->pd().alloc_mr(kBytes);
  MemoryRegion* dst = p.b->pd().alloc_mr(kBytes);
  sim::Time done{};
  p.sim.spawn([](Pair& p, MemoryRegion* src, MemoryRegion* dst,
                 sim::Time& done) -> Task<void> {
    co_await p.qa->post_send(SendWr{.wr_id = 1,
                                    .opcode = Opcode::kWrite,
                                    .local = {src->data(), kBytes},
                                    .remote = dst->remote(0)});
    co_await p.a_scq->wait(PollMode::kBusy);
    done = p.sim.now();
  }(p, src, dst, done));
  p.sim.run();
  EXPECT_GE(done, 80us);
  EXPECT_LE(done, 95us);
}

TEST(Verbs, ReadPaysTwoPropagations) {
  // READ latency > WRITE latency for the same size (request + response).
  auto measure = [](Opcode op) {
    Pair p;
    MemoryRegion* l = p.a->pd().alloc_mr(64);
    MemoryRegion* r = p.b->pd().alloc_mr(64);
    sim::Time done{};
    p.sim.spawn([](Pair& p, Opcode op, MemoryRegion* l, MemoryRegion* r,
                   sim::Time& done) -> Task<void> {
      co_await p.qa->post_send(SendWr{.wr_id = 1,
                                      .opcode = op,
                                      .local = {l->data(), 8},
                                      .remote = r->remote(0)});
      co_await p.a_scq->wait(PollMode::kBusy);
      done = p.sim.now();
    }(p, op, l, r, done));
    p.sim.run();
    return done;
  };
  EXPECT_GT(measure(Opcode::kRead), measure(Opcode::kWrite));
}

TEST(Verbs, ChainedPostCheaperThanTwoDoorbells) {
  // Two WRITEs as a chain (one MMIO) must complete earlier than two separate
  // posts (two MMIOs) — the Chained-Write-Send rationale.
  auto run = [](bool chained) {
    Pair p;
    MemoryRegion* src = p.a->pd().alloc_mr(64);
    MemoryRegion* dst = p.b->pd().alloc_mr(64);
    sim::Time done{};
    p.sim.spawn([](Pair& p, bool chained, MemoryRegion* src, MemoryRegion* dst,
                   sim::Time& done) -> Task<void> {
      SendWr w1{.wr_id = 1, .opcode = Opcode::kWrite,
                .local = {src->data(), 8}, .remote = dst->remote(0),
                .signaled = false};
      SendWr w2{.wr_id = 2, .opcode = Opcode::kWrite,
                .local = {src->data(), 8}, .remote = dst->remote(8)};
      if (chained) {
        std::vector<SendWr> chain;
        chain.push_back(w1);
        chain.push_back(w2);
        co_await p.qa->post_send_chain(std::move(chain));
      } else {
        co_await p.qa->post_send(w1);
        co_await p.qa->post_send(w2);
      }
      co_await p.a_scq->wait(PollMode::kBusy);
      done = p.sim.now();
    }(p, chained, src, dst, done));
    p.sim.run();
    return done;
  };
  EXPECT_LT(run(true), run(false));
}

TEST(Verbs, SendWaitsForPostedRecv) {
  // RNR backpressure: the recv completion appears only after the target
  // finally posts a buffer.
  Pair p;
  MemoryRegion* src = p.a->pd().alloc_mr(64);
  MemoryRegion* dst = p.b->pd().alloc_mr(64);
  sim::Time recv_done{};
  p.sim.spawn([](Pair& p, MemoryRegion* src) -> Task<void> {
    co_await p.qa->post_send(SendWr{
        .wr_id = 1, .opcode = Opcode::kSend, .local = {src->data(), 8}});
  }(p, src));
  p.sim.spawn([](Pair& p, MemoryRegion* dst, sim::Time& recv_done)
                  -> Task<void> {
    co_await p.sim.sleep(100us);  // post the recv late
    p.qb->post_recv(RecvWr{.wr_id = 2, .buf = {dst->data(), 64}});
    co_await p.b_rcq->wait(PollMode::kBusy);
    recv_done = p.sim.now();
  }(p, dst, recv_done));
  p.sim.run();
  EXPECT_GE(recv_done, 100us);
}

TEST(Verbs, RecvBufferTooSmallIsAnError) {
  // A SEND larger than the posted recv completes in error on BOTH sides —
  // kLocLenErr at the responder's recv CQ, kRemOpErr at the requester —
  // and both QPs transition to the error state (no exception, like real RC).
  Pair p;
  MemoryRegion* src = p.a->pd().alloc_mr(64);
  MemoryRegion* dst = p.b->pd().alloc_mr(64);
  p.sim.spawn([](Pair& p, MemoryRegion* src, MemoryRegion* dst) -> Task<void> {
    p.qb->post_recv(RecvWr{.wr_id = 1, .buf = {dst->data(), 4}});
    co_await p.qa->post_send(SendWr{
        .wr_id = 1, .opcode = Opcode::kSend, .local = {src->data(), 32}});
    Wc rwc = co_await p.b_rcq->wait(PollMode::kBusy);
    EXPECT_EQ(rwc.status, WcStatus::kLocLenErr);
    Wc swc = co_await p.a_scq->wait(PollMode::kBusy);
    EXPECT_EQ(swc.status, WcStatus::kRemOpErr);
    EXPECT_EQ(swc.wr_id, 1u);
  }(p, src, dst));
  p.sim.run();
  EXPECT_EQ(p.sim.live_tasks(), 0u);
  EXPECT_TRUE(p.qa->in_error());
  EXPECT_TRUE(p.qb->in_error());
}

TEST(Verbs, CqCloseUnblocksWaiterWithFlushError) {
  // Closing a CQ mid-wait releases the waiter with kWrFlushErr (the clean
  // shutdown path every server loop relies on), for both disciplines.
  for (PollMode mode : {PollMode::kBusy, PollMode::kEvent}) {
    Pair p;
    bool woke = false;
    p.sim.spawn([](Pair& p, PollMode mode, bool& woke) -> Task<void> {
      Wc wc = co_await p.b_rcq->wait(mode);
      EXPECT_EQ(wc.status, WcStatus::kWrFlushErr);
      EXPECT_FALSE(wc.ok());
      woke = true;
    }(p, mode, woke));
    p.sim.spawn([](Pair& p) -> Task<void> {
      co_await p.sim.sleep(5us);
      p.b_rcq->close();
    }(p));
    p.sim.run();
    EXPECT_TRUE(woke);
    EXPECT_EQ(p.sim.live_tasks(), 0u);
  }
}

TEST(Verbs, QpErrorFlushesPostedRecvsAndLaterPosts) {
  Pair p;
  MemoryRegion* dst = p.b->pd().alloc_mr(64);
  p.qb->post_recv(RecvWr{.wr_id = 11, .buf = {dst->data(), 64}});
  p.qb->post_recv(RecvWr{.wr_id = 12, .buf = {dst->data(), 64}});
  p.qb->enter_error();
  EXPECT_TRUE(p.qb->in_error());
  // Both pre-posted recvs flushed...
  EXPECT_EQ(p.b_rcq->depth(), 2u);
  auto wc1 = p.b_rcq->try_poll();
  auto wc2 = p.b_rcq->try_poll();
  ASSERT_TRUE(wc1 && wc2);
  EXPECT_EQ(wc1->wr_id, 11u);
  EXPECT_EQ(wc1->status, WcStatus::kWrFlushErr);
  EXPECT_EQ(wc2->wr_id, 12u);
  // ...and a post_recv on the errored QP flushes immediately too.
  p.qb->post_recv(RecvWr{.wr_id = 13, .buf = {dst->data(), 64}});
  auto wc3 = p.b_rcq->try_poll();
  ASSERT_TRUE(wc3);
  EXPECT_EQ(wc3->wr_id, 13u);
  EXPECT_EQ(wc3->status, WcStatus::kWrFlushErr);
}

TEST(Verbs, SendToErroredPeerFailsWithRetryExceeded) {
  // The peer QP is dead: the transport retransmits into silence, burns its
  // retry budget, and reports kRetryExcErr — time must pass (ack timeouts).
  Pair p;
  MemoryRegion* src = p.a->pd().alloc_mr(64);
  p.qb->enter_error();
  sim::Time done{};
  p.sim.spawn([](Pair& p, MemoryRegion* src, sim::Time& done) -> Task<void> {
    co_await p.qa->post_send(SendWr{
        .wr_id = 21, .opcode = Opcode::kSend, .local = {src->data(), 8}});
    Wc wc = co_await p.a_scq->wait(PollMode::kBusy);
    EXPECT_EQ(wc.status, WcStatus::kRetryExcErr);
    EXPECT_EQ(wc.wr_id, 21u);
    done = p.sim.now();
  }(p, src, done));
  p.sim.run();
  EXPECT_EQ(p.sim.live_tasks(), 0u);
  EXPECT_TRUE(p.qa->in_error());
  EXPECT_GE(done, FaultProfile{}.unreachable_penalty());
}

TEST(Verbs, FiniteRnrRetryExhausts) {
  // With a finite rnr_retry budget and no recv ever posted, the SEND fails
  // with kRnrRetryExcErr instead of waiting forever.
  Pair p;
  auto plan = std::make_unique<FaultPlan>(1);
  plan->profile.rnr_retry = 3;
  plan->profile.rnr_timer = std::chrono::microseconds(2);
  p.fabric.set_fault_plan(std::move(plan));
  MemoryRegion* src = p.a->pd().alloc_mr(64);
  p.sim.spawn([](Pair& p, MemoryRegion* src) -> Task<void> {
    co_await p.qa->post_send(SendWr{
        .wr_id = 31, .opcode = Opcode::kSend, .local = {src->data(), 8}});
    Wc wc = co_await p.a_scq->wait(PollMode::kBusy);
    EXPECT_EQ(wc.status, WcStatus::kRnrRetryExcErr);
  }(p, src));
  p.sim.run();
  EXPECT_EQ(p.sim.live_tasks(), 0u);
  EXPECT_EQ(p.fabric.fault_plan()->injected(), 1u);
}

TEST(Verbs, DropsAreRetransmittedTransparently) {
  // Heavy loss but a generous retry budget: the payload still arrives
  // intact, later than the fault-free run, and the plan records the drops.
  auto run = [](double drop) {
    Pair p;
    auto plan = std::make_unique<FaultPlan>(42);
    plan->profile.drop = drop;
    p.fabric.set_fault_plan(std::move(plan));
    MemoryRegion* src = p.a->pd().alloc_mr(64);
    MemoryRegion* dst = p.b->pd().alloc_mr(64);
    fill(src, "retransmit");
    sim::Time done{};
    p.sim.spawn([](Pair& p, MemoryRegion* src, MemoryRegion* dst,
                   sim::Time& done) -> Task<void> {
      p.qb->post_recv(RecvWr{.wr_id = 1, .buf = {dst->data(), 64}});
      co_await p.qa->post_send(SendWr{
          .wr_id = 1, .opcode = Opcode::kSend, .local = {src->data(), 10}});
      Wc wc = co_await p.b_rcq->wait(PollMode::kBusy);
      EXPECT_TRUE(wc.ok());
      done = p.sim.now();
    }(p, src, dst, done));
    p.sim.run();
    EXPECT_EQ(read_back(dst, 10), "retransmit");
    return std::pair(done, p.fabric.fault_plan()->injected());
  };
  auto [t_clean, n_clean] = run(0.0);
  auto [t_lossy, n_lossy] = run(0.9);
  EXPECT_EQ(n_clean, 0u);
  EXPECT_GT(n_lossy, 0u);
  EXPECT_GT(t_lossy, t_clean);
}

TEST(Verbs, ScheduledQpErrorSurfacesMidRun) {
  // A QP scheduled to fail at t=50us: sends before that succeed, a send
  // posted after it fails (flush at the requester, which is the failed QP).
  Pair p;
  auto plan = std::make_unique<FaultPlan>(7);
  plan->fail_qp_at(p.qa->qp_num(), sim::Time(std::chrono::microseconds(50)));
  p.fabric.set_fault_plan(std::move(plan));
  MemoryRegion* src = p.a->pd().alloc_mr(64);
  MemoryRegion* dst = p.b->pd().alloc_mr(64);
  p.sim.spawn([](Pair& p, MemoryRegion* src, MemoryRegion* dst) -> Task<void> {
    p.qb->post_recv(RecvWr{.wr_id = 1, .buf = {dst->data(), 64}});
    co_await p.qa->post_send(SendWr{
        .wr_id = 1, .opcode = Opcode::kSend, .local = {src->data(), 8}});
    Wc before = co_await p.a_scq->wait(PollMode::kBusy);
    EXPECT_TRUE(before.ok());
    co_await p.sim.sleep(100us);  // ride past the scheduled failure
    co_await p.qa->post_send(SendWr{
        .wr_id = 2, .opcode = Opcode::kSend, .local = {src->data(), 8}});
    Wc after = co_await p.a_scq->wait(PollMode::kBusy);
    EXPECT_EQ(after.status, WcStatus::kWrFlushErr);
  }(p, src, dst));
  p.sim.run();
  EXPECT_EQ(p.sim.live_tasks(), 0u);
  ASSERT_EQ(p.fabric.fault_plan()->trace().size(), 1u);
  EXPECT_EQ(p.fabric.fault_plan()->trace()[0], "t=50000 qp-error qp=1");
}

TEST(Verbs, RevokedMrNaksRemoteAccess) {
  // Revoking the responder's regions turns one-sided ops into
  // kRemAccessErr completions; a fresh region registered afterwards works.
  Pair p;
  MemoryRegion* src = p.a->pd().alloc_mr(64);
  MemoryRegion* dst = p.b->pd().alloc_mr(64);
  p.b->pd().revoke_all();
  p.sim.spawn([](Pair& p, MemoryRegion* src, MemoryRegion* dst) -> Task<void> {
    co_await p.qa->post_send(SendWr{.wr_id = 1,
                                    .opcode = Opcode::kWrite,
                                    .local = {src->data(), 8},
                                    .remote = dst->remote(0)});
    Wc wc = co_await p.a_scq->wait(PollMode::kBusy);
    EXPECT_EQ(wc.status, WcStatus::kRemAccessErr);
  }(p, src, dst));
  p.sim.run();
  EXPECT_EQ(p.sim.live_tasks(), 0u);
  EXPECT_TRUE(p.qa->in_error());
}

TEST(Verbs, NodeCrashClosesCqsAndErrorsQps) {
  Pair p;
  MemoryRegion* dst = p.b->pd().alloc_mr(64);
  p.qb->post_recv(RecvWr{.wr_id = 1, .buf = {dst->data(), 64}});
  p.b->crash();
  EXPECT_TRUE(p.b->crashed());
  EXPECT_TRUE(p.qb->in_error());
  EXPECT_TRUE(p.b_rcq->is_closed());
  EXPECT_TRUE(p.b_scq->is_closed());
  // The surviving peer is NOT errored instantly — it discovers the crash
  // through retransmission timeouts on its next send.
  EXPECT_FALSE(p.qa->in_error());
  // A QP created on a crashed node is born dead.
  CompletionQueue* cq = p.b->create_cq();
  QueuePair* q = p.b->create_qp(*cq, *cq);
  EXPECT_TRUE(q->in_error());
}

TEST(Verbs, FaultDrawsAreSeedDeterministic) {
  // Identical seeds produce identical traces and identical event counts;
  // a different seed diverges (on this schedule).
  auto run = [](uint64_t seed) {
    Pair p;
    auto plan = std::make_unique<FaultPlan>(seed);
    plan->profile.drop = 0.3;
    plan->profile.delay = 0.2;
    p.fabric.set_fault_plan(std::move(plan));
    MemoryRegion* src = p.a->pd().alloc_mr(64);
    MemoryRegion* dst = p.b->pd().alloc_mr(64);
    p.sim.spawn([](Pair& p, MemoryRegion* src,
                   MemoryRegion* dst) -> Task<void> {
      for (int i = 0; i < 20; ++i) {
        p.qb->post_recv(RecvWr{.wr_id = 1, .buf = {dst->data(), 64}});
        co_await p.qa->post_send(SendWr{.wr_id = static_cast<uint64_t>(i),
                                        .opcode = Opcode::kSend,
                                        .local = {src->data(), 16}});
        Wc wc = co_await p.b_rcq->wait(PollMode::kBusy);
        EXPECT_TRUE(wc.ok());
        co_await p.a_scq->wait(PollMode::kBusy);
      }
    }(p, src, dst));
    p.sim.run();
    return std::pair(p.fabric.fault_plan()->trace(),
                     p.sim.events_processed());
  };
  auto [trace1, events1] = run(123);
  auto [trace2, events2] = run(123);
  auto [trace3, events3] = run(321);
  EXPECT_EQ(trace1, trace2);
  EXPECT_EQ(events1, events2);
  EXPECT_FALSE(trace1.empty());
  EXPECT_NE(trace1, trace3);
}

TEST(Verbs, IncastSerializesOnServerRxLink) {
  // 4 clients each WRITE 256 KB to one server concurrently: total time must
  // be >= 4x the single-transfer wire time (rx link is shared).
  Simulator sims;
  Fabric fabric(sims);
  Node* server = fabric.add_node();
  constexpr size_t kBytes = 256 << 10;
  constexpr int kClients = 4;
  CompletionQueue* srv_rcq = server->create_cq();
  sim::Time end{};
  for (int i = 0; i < kClients; ++i) {
    Node* c = fabric.add_node();
    CompletionQueue* cs = c->create_cq();
    CompletionQueue* cr = c->create_cq();
    QueuePair* cq = c->create_qp(*cs, *cr);
    CompletionQueue* ss = server->create_cq();
    QueuePair* sq = server->create_qp(*ss, *srv_rcq);
    Fabric::connect(*cq, *sq);
    MemoryRegion* src = c->pd().alloc_mr(kBytes);
    MemoryRegion* dst = server->pd().alloc_mr(kBytes);
    sims.spawn([](Simulator& sim, QueuePair* qp, CompletionQueue* scq,
                  MemoryRegion* src, MemoryRegion* dst,
                  sim::Time& end) -> Task<void> {
      co_await qp->post_send(SendWr{.wr_id = 1,
                                    .opcode = Opcode::kWrite,
                                    .local = {src->data(), kBytes},
                                    .remote = dst->remote(0)});
      co_await scq->wait(PollMode::kBusy);
      end = std::max(end, sim.now());
    }(sims, cq, cs, src, dst, end));
  }
  sims.run();
  sim::Duration one = fabric.cost().wire_time(kBytes);
  EXPECT_GE(end, one * (kClients - 1));  // rx serialization dominates
  EXPECT_EQ(server->nic().rx_bytes(), kBytes * kClients);
}

TEST(Verbs, NumaRemotePostIsSlower) {
  auto run = [](bool local) {
    Pair p;
    p.qa->numa_local = local;
    MemoryRegion* src = p.a->pd().alloc_mr(64);
    MemoryRegion* dst = p.b->pd().alloc_mr(64);
    sim::Time done{};
    p.sim.spawn([](Pair& p, MemoryRegion* src, MemoryRegion* dst,
                   sim::Time& done) -> Task<void> {
      co_await p.qa->post_send(SendWr{.wr_id = 1,
                                      .opcode = Opcode::kWrite,
                                      .local = {src->data(), 8},
                                      .remote = dst->remote(0)});
      co_await p.a_scq->wait(PollMode::kBusy);
      done = p.sim.now();
    }(p, src, dst, done));
    p.sim.run();
    return done;
  };
  EXPECT_GT(run(false), run(true));
}

TEST(Verbs, EventPollingSlowerButSameBytes) {
  auto run = [](PollMode mode) {
    Pair p;
    MemoryRegion* src = p.a->pd().alloc_mr(64);
    MemoryRegion* dst = p.b->pd().alloc_mr(64);
    fill(src, "polled");
    sim::Time done{};
    p.sim.spawn([](Pair& p, PollMode mode, MemoryRegion* src,
                   MemoryRegion* dst, sim::Time& done) -> Task<void> {
      p.qb->post_recv(RecvWr{.wr_id = 1, .buf = {dst->data(), 64}});
      co_await p.qa->post_send(SendWr{
          .wr_id = 1, .opcode = Opcode::kSend, .local = {src->data(), 6}});
      co_await p.b_rcq->wait(mode);
      done = p.sim.now();
    }(p, mode, src, dst, done));
    p.sim.run();
    return std::pair(done, read_back(dst, 6));
  };
  auto [busy_t, busy_s] = run(PollMode::kBusy);
  auto [event_t, event_s] = run(PollMode::kEvent);
  EXPECT_EQ(busy_s, "polled");
  EXPECT_EQ(event_s, "polled");
  EXPECT_GT(event_t, busy_t + 2us);  // interrupt wake-up dominates the gap
}

TEST(Verbs, ConnectRejectsDoubleConnect) {
  Pair p;  // already connected
  Simulator sim2;
  Fabric f2(sim2);
  Node* n = f2.add_node();
  CompletionQueue* cq = n->create_cq();
  QueuePair* q = n->create_qp(*cq, *cq);
  EXPECT_THROW(Fabric::connect(*p.qa, *q), std::logic_error);
}

TEST(Verbs, PostOnDisconnectedQpThrows) {
  Simulator sim;
  Fabric f(sim);
  Node* n = f.add_node();
  CompletionQueue* cq = n->create_cq();
  QueuePair* q = n->create_qp(*cq, *cq);
  sim.spawn([](QueuePair* q) -> Task<void> {
    co_await q->post_send(SendWr{});
  }(q));
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(Srq, SharedPoolFeedsMultipleQps) {
  // One shared recv pool on the receiver serves sends arriving on two
  // different QPs; posts are counted and the pool drains FIFO.
  Simulator sim;
  Fabric fabric{sim};
  Node* a = fabric.add_node();
  Node* b = fabric.add_node();
  CompletionQueue* a_cq1 = a->create_cq();
  CompletionQueue* a_cq2 = a->create_cq();
  CompletionQueue* b_cq1 = b->create_cq();
  CompletionQueue* b_cq2 = b->create_cq();
  QueuePair* qa1 = a->create_qp(*a_cq1, *a_cq1);
  QueuePair* qa2 = a->create_qp(*a_cq2, *a_cq2);
  QueuePair* qb1 = b->create_qp(*b_cq1, *b_cq1);
  QueuePair* qb2 = b->create_qp(*b_cq2, *b_cq2);
  Fabric::connect(*qa1, *qb1);
  Fabric::connect(*qa2, *qb2);

  SharedReceiveQueue* srq = b->create_srq();
  qb1->set_srq(srq);
  qb2->set_srq(srq);
  MemoryRegion* dst = b->pd().alloc_mr(128);
  srq->post_recv(RecvWr{.wr_id = 1, .buf = {dst->data(), 64}});
  srq->post_recv(RecvWr{.wr_id = 2, .buf = {dst->data() + 64, 64}});
  EXPECT_EQ(srq->posted(), 2u);
  EXPECT_EQ(b->counters().get(obs::Ctr::kSrqPosts), 2u);

  MemoryRegion* s1 = a->pd().alloc_mr(64);
  MemoryRegion* s2 = a->pd().alloc_mr(64);
  fill(s1, "from-qp1");
  fill(s2, "from-qp2");
  sim.spawn([](Simulator& sim, QueuePair* qa1, QueuePair* qa2,
               CompletionQueue* b_cq1, CompletionQueue* b_cq2,
               MemoryRegion* s1, MemoryRegion* s2) -> Task<void> {
    co_await qa1->post_send(SendWr{.wr_id = 1,
                                   .opcode = Opcode::kSend,
                                   .local = {s1->data(), 8},
                                   .signaled = false});
    co_await qa2->post_send(SendWr{.wr_id = 2,
                                   .opcode = Opcode::kSend,
                                   .local = {s2->data(), 8},
                                   .signaled = false});
    Wc w1 = co_await b_cq1->wait(PollMode::kBusy);
    Wc w2 = co_await b_cq2->wait(PollMode::kBusy);
    EXPECT_TRUE(w1.ok());
    EXPECT_TRUE(w2.ok());
    EXPECT_EQ(w1.byte_len, 8u);
    EXPECT_EQ(w2.byte_len, 8u);
  }(sim, qa1, qa2, b_cq1, b_cq2, s1, s2));
  sim.run();
  EXPECT_EQ(sim.live_tasks(), 0u);
  EXPECT_EQ(srq->posted(), 0u);
  // FIFO drain: the first-posted send consumed the first-posted buffer.
  EXPECT_EQ(read_back(dst, 8, 0), "from-qp1");
  EXPECT_EQ(read_back(dst, 8, 64), "from-qp2");
}

TEST(Srq, UnderflowHitsRnrAndExhaustsFiniteRetry) {
  // An attached-but-empty SRQ behaves like a missing recv: the sender sees
  // paced RNR probes and, with a finite budget, kRnrRetryExcErr.
  Pair p;
  auto plan = std::make_unique<FaultPlan>(7);
  plan->profile.rnr_retry = 2;
  plan->profile.rnr_timer = std::chrono::microseconds(2);
  p.fabric.set_fault_plan(std::move(plan));
  SharedReceiveQueue* srq = p.b->create_srq();
  p.qb->set_srq(srq);
  MemoryRegion* src = p.a->pd().alloc_mr(64);
  p.sim.spawn([](Pair& p, MemoryRegion* src) -> Task<void> {
    co_await p.qa->post_send(SendWr{
        .wr_id = 5, .opcode = Opcode::kSend, .local = {src->data(), 8}});
    Wc wc = co_await p.a_scq->wait(PollMode::kBusy);
    EXPECT_EQ(wc.status, WcStatus::kRnrRetryExcErr);
  }(p, src));
  p.sim.run();
  EXPECT_EQ(p.sim.live_tasks(), 0u);
  EXPECT_GT(p.a->counters().get(obs::Ctr::kRnrEvents), 0u);
}

TEST(Cq, BatchPollDrainsInOrderUpToMax) {
  Pair p;
  MemoryRegion* src = p.a->pd().alloc_mr(64);
  MemoryRegion* dst = p.b->pd().alloc_mr(64);
  p.sim.spawn([](Pair& p, MemoryRegion* src, MemoryRegion* dst) -> Task<void> {
    for (uint64_t i = 1; i <= 5; ++i)
      co_await p.qa->post_send(SendWr{.wr_id = i,
                                      .opcode = Opcode::kWrite,
                                      .local = {src->data(), 8},
                                      .remote = dst->remote(0)});
    co_await p.sim.sleep(std::chrono::milliseconds(1));  // let all complete
    auto first = p.a_scq->poll(3);
    EXPECT_EQ(first.size(), 3u);
    if (first.size() == 3) {
      EXPECT_EQ(first[0].wr_id, 1u);
      EXPECT_EQ(first[1].wr_id, 2u);
      EXPECT_EQ(first[2].wr_id, 3u);
    }
    auto rest = poll_cq(*p.a_scq, 10);
    EXPECT_EQ(rest.size(), 2u);
    if (rest.size() == 2) {
      EXPECT_EQ(rest[0].wr_id, 4u);
      EXPECT_EQ(rest[1].wr_id, 5u);
    }
    EXPECT_TRUE(p.a_scq->poll(4).empty());
  }(p, src, dst));
  p.sim.run();
  EXPECT_EQ(p.sim.live_tasks(), 0u);
  // Two non-empty batch drains; the empty one is not a batch poll.
  EXPECT_EQ(p.a->counters().get(obs::Ctr::kCqBatchPolls), 2u);
  EXPECT_EQ(p.a->counters().get(obs::Ctr::kCqesPolled), 5u);
}

TEST(Cq, WaitManyRespectsMaxAndKeepsOrder) {
  Pair p;
  MemoryRegion* src = p.a->pd().alloc_mr(64);
  MemoryRegion* dst = p.b->pd().alloc_mr(64);
  p.sim.spawn([](Pair& p, MemoryRegion* src, MemoryRegion* dst) -> Task<void> {
    for (uint64_t i = 1; i <= 4; ++i)
      co_await p.qa->post_send(SendWr{.wr_id = i,
                                      .opcode = Opcode::kWrite,
                                      .local = {src->data(), 8},
                                      .remote = dst->remote(0)});
    co_await p.sim.sleep(std::chrono::milliseconds(1));
    auto batch = co_await p.a_scq->wait_many(PollMode::kBusy, 2);
    EXPECT_EQ(batch.size(), 2u);
    if (batch.size() == 2) {
      EXPECT_EQ(batch[0].wr_id, 1u);
      EXPECT_EQ(batch[1].wr_id, 2u);
    }
    auto tail = co_await p.a_scq->wait_many(PollMode::kBusy, 16);
    EXPECT_EQ(tail.size(), 2u);
    if (tail.size() == 2) {
      EXPECT_EQ(tail[0].wr_id, 3u);
      EXPECT_EQ(tail[1].wr_id, 4u);
    }
  }(p, src, dst));
  p.sim.run();
  EXPECT_EQ(p.sim.live_tasks(), 0u);
}

TEST(Verbs, SameTickPostsCoalesceUnderOneDoorbell) {
  // Two tasks post to the same QP in the same tick: the first becomes the
  // flusher (pays the MMIO), the second rides its doorbell.
  Pair p;
  MemoryRegion* src = p.a->pd().alloc_mr(64);
  MemoryRegion* dst = p.b->pd().alloc_mr(64);
  const uint64_t db0 = p.a->counters().get(obs::Ctr::kDoorbells);
  const uint64_t wq0 = p.a->counters().get(obs::Ctr::kWqesPosted);
  const uint64_t co0 = p.a->counters().get(obs::Ctr::kDoorbellCoalescedWqes);
  for (uint64_t i = 1; i <= 2; ++i)
    p.sim.spawn([](Pair& p, MemoryRegion* src, MemoryRegion* dst,
                   uint64_t i) -> Task<void> {
      co_await p.qa->post_send(SendWr{.wr_id = i,
                                      .opcode = Opcode::kWrite,
                                      .local = {src->data(), 8},
                                      .remote = dst->remote(0),
                                      .signaled = false});
    }(p, src, dst, i));
  p.sim.run();
  EXPECT_EQ(p.sim.live_tasks(), 0u);
  EXPECT_EQ(p.a->counters().get(obs::Ctr::kDoorbells) - db0, 1u);
  EXPECT_EQ(p.a->counters().get(obs::Ctr::kWqesPosted) - wq0, 2u);
  EXPECT_EQ(p.a->counters().get(obs::Ctr::kDoorbellCoalescedWqes) - co0, 1u);
}

TEST(Verbs, SequentialPostsDoNotCoalesce) {
  Pair p;
  MemoryRegion* src = p.a->pd().alloc_mr(64);
  MemoryRegion* dst = p.b->pd().alloc_mr(64);
  const uint64_t db0 = p.a->counters().get(obs::Ctr::kDoorbells);
  const uint64_t co0 = p.a->counters().get(obs::Ctr::kDoorbellCoalescedWqes);
  p.sim.spawn([](Pair& p, MemoryRegion* src, MemoryRegion* dst) -> Task<void> {
    for (uint64_t i = 1; i <= 2; ++i)
      co_await p.qa->post_send(SendWr{.wr_id = i,
                                      .opcode = Opcode::kWrite,
                                      .local = {src->data(), 8},
                                      .remote = dst->remote(0),
                                      .signaled = false});
  }(p, src, dst));
  p.sim.run();
  EXPECT_EQ(p.sim.live_tasks(), 0u);
  EXPECT_EQ(p.a->counters().get(obs::Ctr::kDoorbells) - db0, 2u);
  EXPECT_EQ(p.a->counters().get(obs::Ctr::kDoorbellCoalescedWqes) - co0, 0u);
}

}  // namespace
}  // namespace hatrpc::verbs
